"""Affine (uniform) quantization arithmetic.

Implements the int8/int4 quantization scheme of Jacob et al. (CVPR'18),
the scheme behind TensorFlow Model Optimization / TFLite that the paper's
adapted models use: real values are mapped to integers via

    q = clamp(round(x / scale) + zero_point, qmin, qmax)
    x_hat = (q - zero_point) * scale

Weights use symmetric per-channel quantization (zero_point = 0), while
activations use asymmetric per-tensor quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Quantization parameters for one tensor.

    Attributes
    ----------
    scale:
        Positive real step size; scalar array, or per-channel vector when
        ``axis`` is not None.
    zero_point:
        Integer offset mapping real 0.0 onto the grid; same shape as scale.
    qmin, qmax:
        Inclusive integer range, e.g. (-128, 127) for int8 symmetric
        weights or (0, 255) for uint8 activations.
    axis:
        Channel axis for per-channel quantization, or None for per-tensor.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    qmin: int
    qmax: int
    axis: Optional[int] = None

    def broadcast_shape(self, ndim: int) -> Tuple[int, ...]:
        """Shape that broadcasts scale/zp against an ndim-dim tensor."""
        if self.axis is None:
            return ()
        shape = [1] * ndim
        shape[self.axis] = int(np.asarray(self.scale).size)
        return tuple(shape)

    def scale_for(self, ndim: int) -> np.ndarray:
        s = np.asarray(self.scale, dtype=np.float64)
        if self.axis is None:
            return s
        return s.reshape(self.broadcast_shape(ndim))

    def zero_point_for(self, ndim: int) -> np.ndarray:
        z = np.asarray(self.zero_point, dtype=np.float64)
        if self.axis is None:
            return z
        return z.reshape(self.broadcast_shape(ndim))


def int_range(bits: int, signed: bool) -> Tuple[int, int]:
    """Inclusive integer range of a ``bits``-wide type."""
    if bits < 2 or bits > 32:
        raise ValueError(f"unsupported bit width: {bits}")
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2 ** bits - 1


def choose_qparams(min_val: np.ndarray, max_val: np.ndarray, qmin: int, qmax: int,
                   symmetric: bool = False, axis: Optional[int] = None,
                   eps: float = 1e-9) -> QuantParams:
    """Compute scale/zero-point covering the observed [min, max] range.

    ``min_val``/``max_val`` are scalars for per-tensor, or per-channel
    vectors. The range is always widened to include 0 so that zero is
    exactly representable (required for zero padding to be exact).
    """
    mn = np.minimum(np.asarray(min_val, dtype=np.float64), 0.0)
    mx = np.maximum(np.asarray(max_val, dtype=np.float64), 0.0)
    if symmetric:
        bound = np.maximum(np.abs(mn), np.abs(mx))
        # symmetric grids center on 0; scale = bound/qmax makes +bound
        # exactly representable (restricted-range convention, as TFLite
        # symmetric int8 weights), so round-trip error <= scale/2 inside
        # [-bound, bound].
        scale = np.maximum(bound / qmax, eps)
        zero_point = np.zeros_like(scale)
    else:
        scale = np.maximum((mx - mn) / (qmax - qmin), eps)
        zero_point = np.round(qmin - mn / scale)
        zero_point = np.clip(zero_point, qmin, qmax)
    return QuantParams(scale=np.asarray(scale), zero_point=np.asarray(zero_point),
                       qmin=qmin, qmax=qmax, axis=axis)


def quantize(x: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Real -> integer grid (returns an integer-valued int32 array)."""
    s = qp.scale_for(x.ndim)
    z = qp.zero_point_for(x.ndim)
    q = np.round(x / s) + z
    return np.clip(q, qp.qmin, qp.qmax).astype(np.int32)


def dequantize(q: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Integer grid -> real."""
    s = qp.scale_for(q.ndim)
    z = qp.zero_point_for(q.ndim)
    return (q.astype(np.float64) - z) * s


def fake_quantize_array(x: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Quantize-dequantize round trip (the QAT forward simulation)."""
    return dequantize(quantize(x, qp), qp)


def quantization_error(x: np.ndarray, qp: QuantParams) -> float:
    """Max absolute round-trip error; bounded by scale/2 inside the range."""
    return float(np.abs(x - fake_quantize_array(x, qp)).max())


def quantize_multiplier(real_multiplier: float) -> Tuple[int, int]:
    """Decompose a positive real multiplier as M0 * 2^-shift.

    Returns (M0, shift) with M0 an int32 in [2^30, 2^31) so integer-only
    requantization can be done as ``(acc * M0) >> (31 + shift)`` — the
    TFLite fixed-point scheme our edge engine uses.
    """
    if real_multiplier <= 0:
        raise ValueError("multiplier must be positive")
    shift = 0
    m = float(real_multiplier)
    while m < 0.5:
        m *= 2.0
        shift += 1
    while m >= 1.0:
        m /= 2.0
        shift -= 1
    m0 = int(round(m * (1 << 31)))
    if m0 == (1 << 31):  # rounding edge: 0.99999... -> 1.0
        m0 //= 2
        shift -= 1
    return m0, shift


def requantize(acc: np.ndarray, m0: int, shift: int) -> np.ndarray:
    """Apply the fixed-point multiplier with round-half-away rounding."""
    total_shift = 31 + shift
    prod = acc.astype(np.int64) * np.int64(m0)
    rounding = np.int64(1) << (total_shift - 1)
    return ((prod + np.where(prod >= 0, rounding, rounding - 1)) >> total_shift).astype(np.int64)
