"""§5.2 DSSIM check: adversarial images stay perceptually close.

Paper: "The resulting DSSIM for all images are below 0.0092" at
eps = 8/255 on 224x224 images.  Our eps is scaled up for the smaller
input (see config.py), so the absolute DSSIM bound scales accordingly;
the reproduced claim is that DIVA's perturbations are no more visible
than PGD's at the same budget, and both stay small in absolute terms.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attacks import DIVA, PGD, linf_distance
from ..metrics import batch_dssim, psnr
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, arch: str = "resnet",
        verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"dssim-{arch}")

    kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
    x_pgd = PGD(quant, **kw).generate(atk_set.x, atk_set.y)
    x_diva = DIVA(orig, quant, c=cfg.c, **kw).generate(atk_set.x, atk_set.y)

    results: Dict = {"eps": cfg.eps, "per_attack": {}}
    rows = []
    for name, x_adv in [("PGD", x_pgd), ("DIVA", x_diva)]:
        d = batch_dssim(x_adv, atk_set.x)
        linf = linf_distance(x_adv, atk_set.x)
        p = np.mean([psnr(a, b) for a, b in zip(x_adv, atk_set.x)])
        results["per_attack"][name] = {
            "max_dssim": float(d.max()), "mean_dssim": float(d.mean()),
            "max_linf": float(linf.max()), "mean_psnr": float(p),
        }
        rows.append([name, f"{d.max():.4f}", f"{d.mean():.4f}",
                     f"{linf.max():.4f}", f"{p:.1f} dB"])
    table = format_table(
        ["Attack", "Max DSSIM", "Mean DSSIM", "Max L-inf", "Mean PSNR"],
        rows, title="§5.2 — perceptual similarity of adversarial images")
    results["table"] = table
    if verbose:
        print(table)
    save_results("dssim", results)
    return results
