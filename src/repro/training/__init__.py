"""``repro.training`` — supervised training loop and batched evaluation."""

from .evaluate import (compile_inference, evaluate_accuracy, evaluate_loss,
                       evaluate_topk_accuracy, predict_labels, predict_logits,
                       predict_probs)
from .loop import FitResult, fit

__all__ = [
    "fit", "FitResult",
    "compile_inference",
    "predict_logits", "predict_probs", "predict_labels",
    "evaluate_accuracy", "evaluate_topk_accuracy", "evaluate_loss",
]
