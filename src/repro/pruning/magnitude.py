"""Magnitude-based weight pruning masks.

Pruning zeroes the smallest-magnitude weights (Zhu & Gupta 2018 — the
tfmot scheme the paper uses) to reach a target sparsity, either per layer
or globally across all prunable weights.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module


def prunable_layers(model: Module) -> List[Tuple[str, Module]]:
    """Conv2d/Linear layers eligible for weight pruning."""
    return [(name, mod) for name, mod in model.named_modules()
            if isinstance(mod, (Conv2d, Linear))]


def magnitude_mask(weight: np.ndarray, sparsity: float) -> np.ndarray:
    """Binary mask keeping the largest-magnitude ``1 - sparsity`` fraction.

    Ties at the threshold are broken toward keeping (mask >= threshold),
    so realized sparsity never exceeds the requested one by more than the
    tie mass.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return np.ones_like(weight)
    flat = np.abs(weight).ravel()
    k = int(np.floor(sparsity * flat.size))
    if k == 0:
        return np.ones_like(weight)
    # threshold = k-th smallest magnitude; everything strictly below goes
    thresh = np.partition(flat, k - 1)[k - 1]
    mask = (np.abs(weight) > thresh).astype(weight.dtype)
    # exactly-at-threshold weights fill remaining keep slots deterministically
    keep_target = flat.size - k
    short = keep_target - int(mask.sum())
    if short > 0:
        at = np.flatnonzero((np.abs(weight) == thresh).ravel() & (mask.ravel() == 0))
        mask.ravel()[at[:short]] = 1.0
    return mask


def layerwise_masks(model: Module, sparsity: float) -> Dict[str, np.ndarray]:
    """Per-layer masks, each at the target sparsity."""
    return {name: magnitude_mask(mod.weight.data, sparsity)
            for name, mod in prunable_layers(model)}


def global_masks(model: Module, sparsity: float) -> Dict[str, np.ndarray]:
    """Masks from a single global magnitude threshold across layers."""
    layers = prunable_layers(model)
    if not layers:
        return {}
    all_mags = np.concatenate([np.abs(m.weight.data).ravel() for _, m in layers])
    k = int(np.floor(sparsity * all_mags.size))
    if k == 0:
        return {name: np.ones_like(m.weight.data) for name, m in layers}
    thresh = np.partition(all_mags, k - 1)[k - 1]
    return {name: (np.abs(m.weight.data) > thresh).astype(m.weight.data.dtype)
            for name, m in layers}


def apply_masks(model: Module, masks: Dict[str, np.ndarray]) -> None:
    """Install masks on layers (weights are masked in every forward)."""
    by_name = dict(prunable_layers(model))
    unknown = set(masks) - set(by_name)
    if unknown:
        raise KeyError(f"masks reference unknown layers: {sorted(unknown)}")
    for name, mask in masks.items():
        by_name[name].set_weight_mask(mask)


def model_sparsity(model: Module) -> float:
    """Realized weight sparsity over prunable layers (masked or zero)."""
    zero = 0
    total = 0
    for _, mod in prunable_layers(model):
        w = mod.weight.data
        if mod.weight_mask is not None:
            w = w * mod.weight_mask
        zero += int((w == 0).sum())
        total += w.size
    return zero / total if total else 0.0
