"""Machine-readable perf trajectory: run the kernel benches, write
``BENCH_<sha>.json``.

Each entry records median ns per kernel plus end-to-end throughput
sections (attack stepping, compiled replay, sweeps, train steps,
distill epochs, edge inference, served mixed workloads) so successive
PRs can be compared mechanically::

    make bench                    # or: repro-bench / python benchmarks/run_bench.py
    cat BENCH_ab12cd3.json

``docs/BENCHMARKS.md`` documents the full schema, the two measurement
protocols (subprocess-isolated vs in-process arms) and how to compare
entries across PRs honestly (absolute medians, not just ratios).

Only the self-contained benches run by default (the pipeline-backed
edge-engine benches train paper-scale models on first use; pass
``--all`` to include them).  Attack workloads are benchmarked in
float32 — the deployment dtype — via the bench suite's session fixture.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

#: benches that need no trained pipeline; keep in sync with bench_kernels.py
FAST_BENCH_FILTER = ("conv2d or fake_quant or compiled_replay "
                     "or eager_forward or attack_step or attack_sweep "
                     "or attack_loop or train_step or distill_epoch "
                     "or edge_infer or serve_throughput "
                     "or float_coalesce or rowrep_gemm or net_serving "
                     "or parallel_serving")


def repo_root() -> Path:
    """Repo root: the directory holding ``benchmarks/`` (cwd-based with a
    fallback to the source checkout this module lives in)."""
    for cand in (Path.cwd(), Path(__file__).resolve().parents[2]):
        if (cand / "benchmarks" / "bench_kernels.py").is_file():
            return cand
    raise SystemExit("cannot locate benchmarks/bench_kernels.py; "
                     "run from the repository root")


def git_sha(root: Path) -> str:
    """Short HEAD sha, with ``-dirty`` when the working tree differs —
    a trajectory entry must not be attributed to a commit whose tree
    was not the code measured."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=root, capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        if out.returncode != 0 or not sha:
            return "nosha"
        # tracked files only, matching `git describe --dirty` semantics
        status = subprocess.run(["git", "status", "--porcelain", "-uno"],
                                cwd=root, capture_output=True, text=True,
                                timeout=10)
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except Exception:
        return "nosha"


def run_benches(root: Path, select: Optional[str], json_path: Path,
                extra_args: Optional[list] = None) -> int:
    cmd = [sys.executable, "-m", "pytest", "benchmarks/bench_kernels.py",
           "--benchmark-only", "-q", "--benchmark-json", str(json_path)]
    if select:
        cmd += ["-k", select]
    if extra_args:
        cmd += extra_args
    return subprocess.run(cmd, cwd=root).returncode


def summarize(raw: dict, sha: str) -> dict:
    """Reduce the pytest-benchmark JSON to the trajectory schema."""
    kernels = {}
    attack = {}
    attack_loop = {}
    replay = {}
    sweep = {}
    train = {}
    distill = {}
    edge = {}
    serve = {}
    float_coalesce = {}
    rowrep_gemm = {}
    net_serving = {}
    parallel_serving = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0].removeprefix("test_")
        if "[" in bench["name"]:        # parametrized: keep the variant tag
            name += ":" + bench["name"].split("[", 1)[1].rstrip("]")
        median_ns = bench["stats"]["median"] * 1e9
        kernels[name] = median_ns
        extra = bench.get("extra_info") or {}
        if "diva_steps_per_sec" in extra:
            attack = {
                "diva_steps_per_sec": extra["diva_steps_per_sec"],
                "pgd_steps_per_sec": extra["pgd_steps_per_sec"],
                "diva_step_ns": extra["diva_step_ns"],
            }
        if "loop_vs_per_step_speedup" in extra:
            attack_loop[extra["attack"]] = {
                "rows": extra["rows"],
                "steps": extra["steps"],
                "looped_ms": extra["loop_looped_ms"],
                "per_step_ms": extra["loop_per_step_ms"],
                "eager_ms": extra["loop_eager_ms"],
                "steps_per_sec": extra["loop_steps_per_sec"],
                "vs_per_step_speedup": extra["loop_vs_per_step_speedup"],
                "vs_eager_speedup": extra["loop_vs_eager_speedup"],
            }
        if "sweep_speedup" in extra:
            sweep = {
                "grid_points": extra["grid_points"],
                "sweep_ms": extra["sweep_ms"],
                "sequential_ms": extra["sequential_ms"],
                "speedup": extra["sweep_speedup"],
            }
        if "train_step_speedup" in extra:
            train[extra["model"]] = {
                "eager_step_ms": extra["eager_step_ms"],
                "compiled_step_ms": extra["compiled_step_ms"],
                "speedup": extra["train_step_speedup"],
                "batch": extra["batch"],
            }
        if "distill_epoch_speedup" in extra:
            distill = {
                "eager_epoch_ms": extra["eager_epoch_ms"],
                "compiled_epoch_ms": extra["compiled_epoch_ms"],
                "speedup": extra["distill_epoch_speedup"],
                "images": extra["images"],
            }
        if "serve_throughput_speedup" in extra:
            serve = {
                "jobs": extra["serve_jobs"],
                "rows": extra["serve_rows"],
                "sequential_ms": extra["serve_sequential_ms"],
                "serve_ms": extra["serve_ms"],
                "speedup": extra["serve_throughput_speedup"],
                "dispatches": extra["serve_dispatches"],
                "coalesced_dispatches": extra["serve_coalesced"],
            }
        if "float_coalesce_speedup" in extra:
            float_coalesce = {
                "jobs": extra["float_jobs"],
                "rows": extra["float_rows"],
                "sequential_ms": extra["float_sequential_ms"],
                "coalesced_ms": extra["float_coalesced_ms"],
                "integer_reference_ms": extra["float_integer_ms"],
                "speedup": extra["float_coalesce_speedup"],
            }
        if "net_boundary_overhead_pct" in extra:
            net_serving = {
                "jobs": extra["net_jobs"],
                "rows": extra["net_rows"],
                "inproc_ms": extra["net_inproc_ms"],
                "loopback_ms": extra["net_loopback_ms"],
                "boundary_overhead_pct": extra["net_boundary_overhead_pct"],
                "chaos_retried": extra["net_chaos_retried"],
                "chaos_deduped": extra["net_chaos_deduped"],
                "chaos_ok": extra["net_chaos_ok"],
            }
        if "parallel_pool_speedup" in extra:
            parallel_serving = {
                "jobs": extra["parallel_jobs"],
                "rows": extra["parallel_rows"],
                "workers": extra["parallel_workers"],
                "scheduler_ms": extra["parallel_scheduler_ms"],
                "pool_ms": extra["parallel_pool_ms"],
                "speedup": extra["parallel_pool_speedup"],
                "dispatches": extra["parallel_dispatches"],
                "waves": extra["parallel_waves"],
                "steals": extra["parallel_steals"],
            }
        if "rowrep_overhead_pct" in extra:
            rowrep_gemm = {
                "rows": extra["rowrep_rows"],
                "raw_ns": extra["rowrep_raw_ns"],
                "rr_ns": extra["rowrep_rr_ns"],
                "overhead_pct": extra["rowrep_overhead_pct"],
            }
        if "edge_infer_speedup" in extra:
            edge = {
                "model": extra["model"],
                "eager_ms": extra["edge_eager_ms"],
                "compiled_ms": extra["edge_compiled_ms"],
                "speedup": extra["edge_infer_speedup"],
                "batch": extra["batch"],
            }
    eager = kernels.get("eager_forward_reference")
    compiled = kernels.get("compiled_replay_vs_eager_forward")
    if eager and compiled:
        replay = {
            "eager_forward_ns": eager,
            "compiled_replay_ns": compiled,
            "speedup": eager / compiled,
        }
    return {
        "sha": sha,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "dtype": "float32",
        "kernels_median_ns": kernels,
        "attack": attack,
        "attack_loop": attack_loop,
        "compiled_replay": replay,
        "sweep_vs_sequential": sweep,
        "train_step": train,
        "distill_epoch": distill,
        "edge_infer": edge,
        "serve_throughput": serve,
        "float_coalesce": float_coalesce,
        "rowrep_gemm": rowrep_gemm,
        "net_serving": net_serving,
        "parallel_serving": parallel_serving,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the kernel benches and write BENCH_<sha>.json")
    parser.add_argument("--all", action="store_true",
                        help="include the pipeline-backed benches "
                             "(trains paper-scale models on first use)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_<sha>.json in the "
                             "repo root)")
    args, passthrough = parser.parse_known_args(argv)

    root = repo_root()
    sha = git_sha(root)
    with tempfile.TemporaryDirectory() as td:
        json_path = Path(td) / "bench.json"
        rc = run_benches(root, None if args.all else FAST_BENCH_FILTER,
                         json_path, passthrough)
        if rc != 0:
            return rc
        raw = json.loads(json_path.read_text())
    summary = summarize(raw, sha)
    out = args.out or (root / f"BENCH_{sha}.json")
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if summary["attack"]:
        print(f"  DIVA {summary['attack']['diva_steps_per_sec']:.1f} steps/s, "
              f"PGD {summary['attack']['pgd_steps_per_sec']:.1f} steps/s")
    for which, a in summary["attack_loop"].items():
        print(f"  {which} whole-loop ({a['rows']} rows x {a['steps']} steps) "
              f"{a['vs_per_step_speedup']:.2f}x vs per-step, "
              f"{a['vs_eager_speedup']:.2f}x vs eager "
              f"({a['per_step_ms']:.0f} -> {a['looped_ms']:.0f} ms)")
    if summary["compiled_replay"]:
        print(f"  compiled replay {summary['compiled_replay']['speedup']:.2f}x "
              "vs eager forward")
    if summary["sweep_vs_sequential"]:
        s = summary["sweep_vs_sequential"]
        print(f"  {s['grid_points']}-point sweep {s['speedup']:.2f}x vs "
              "sequential per-config attacks")
    for model, t in summary["train_step"].items():
        print(f"  {model} train step {t['speedup']:.2f}x compiled vs eager "
              f"({t['eager_step_ms']:.1f} -> {t['compiled_step_ms']:.1f} ms)")
    if summary["distill_epoch"]:
        d = summary["distill_epoch"]
        print(f"  distill epoch {d['speedup']:.2f}x compiled vs eager")
    if summary["edge_infer"]:
        e = summary["edge_infer"]
        print(f"  edge inference ({e['model']} int8, batch {e['batch']}) "
              f"{e['speedup']:.2f}x compiled vs eager "
              f"({e['eager_ms']:.1f} -> {e['compiled_ms']:.1f} ms)")
    if summary["serve_throughput"]:
        s = summary["serve_throughput"]
        print(f"  serve throughput ({s['jobs']} mixed jobs, {s['rows']} "
              f"rows) {s['speedup']:.2f}x coalesced vs sequential "
              f"({s['sequential_ms']:.1f} -> {s['serve_ms']:.1f} ms)")
    if summary["float_coalesce"]:
        f = summary["float_coalesce"]
        print(f"  float coalescing ({f['jobs']} predict jobs, {f['rows']} "
              f"rows) {f['speedup']:.2f}x vs sequential "
              f"({f['sequential_ms']:.1f} -> {f['coalesced_ms']:.1f} ms; "
              f"int8 reference {f['integer_reference_ms']:.1f} ms)")
    if summary["rowrep_gemm"]:
        r = summary["rowrep_gemm"]
        print(f"  row-reproducible GEMM overhead "
              f"{r['overhead_pct']:+.1f}% vs raw BLAS "
              f"({r['rows']} rows, full blocks)")
    if summary["parallel_serving"]:
        p = summary["parallel_serving"]
        print(f"  parallel serving ({p['jobs']} jobs, {p['workers']} "
              f"workers) {p['speedup']:.2f}x pool vs scheduler "
              f"({p['scheduler_ms']:.1f} -> {p['pool_ms']:.1f} ms; "
              f"{p['waves']} waves, {p['steals']} steals, "
              "bit-parity gated)")
    if summary["net_serving"]:
        n = summary["net_serving"]
        print(f"  net serving boundary {n['boundary_overhead_pct']:+.1f}% "
              f"vs in-process ({n['inproc_ms']:.1f} -> "
              f"{n['loopback_ms']:.1f} ms, {n['jobs']} jobs; chaos "
              f"{n['chaos_retried']} retried / {n['chaos_deduped']} deduped, "
              f"all {n['chaos_ok']} ok bit-identical)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
