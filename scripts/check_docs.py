"""Documentation checks: doctests + markdown link/anchor integrity.

Run from the repo root (CI does, via ``make docs-check``)::

    PYTHONPATH=src python scripts/check_docs.py

Two passes:

1. ``doctest.testmod`` over the documented modules listed in
   ``DOCTEST_MODULES`` (modules with executable examples in their
   docstrings; keep the list in sync when adding doctests elsewhere);
2. every relative link and ``#anchor`` in the markdown files listed in
   ``DOC_FILES`` must resolve — the target file must exist, and an
   anchor must match a heading slug (GitHub slugification) in the
   target.  External ``http(s)`` links are not fetched (CI has no
   business depending on the network);
3. the traced-op table in ``docs/ARCHITECTURE.md`` (the "Traced ops"
   section) must list exactly the op kinds registered in
   ``repro.nn.graph._FWD_FACTORY`` — an op added to the compiler
   without a table row (or a stale row for a removed op) fails the
   build.
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

DOCTEST_MODULES = [
    "repro.serve.cache",
    "repro.serve.faults",
    "repro.serve.journal",
    "repro.serve.net",
    "repro.serve.pool",
    "repro.serve.resilience",
    "repro.serve.scheduler",
    "repro.serve.session",
    "repro.serve.workload",
    "repro.benchrunner",
]

DOC_FILES = ["docs/*.md", "examples/README.md", "ROADMAP.md", "PAPER.md"]

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes.

    Code-span backticks and emphasis asterisks are formatting (removed);
    underscores are literal inside this repo's headings (kept).
    """
    text = re.sub(r"[`*]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(md_path: Path) -> set:
    text = _CODE_FENCE.sub("", md_path.read_text())
    return {github_slug(h) for h in _HEADING.findall(text)}


def _display(md: Path) -> str:
    try:
        return str(md.relative_to(ROOT))
    except ValueError:
        return str(md)


def check_markdown(paths) -> list:
    errors = []
    for md in paths:
        text = _CODE_FENCE.sub("", md.read_text())
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = (md.parent / path_part).resolve() if path_part else md
            if not dest.exists():
                errors.append(f"{_display(md)}: broken link -> {target}")
                continue
            if anchor:
                if dest.suffix != ".md":
                    continue        # anchors into source files: line refs
                if anchor not in heading_slugs(dest):
                    errors.append(f"{_display(md)}: missing anchor "
                                  f"#{anchor} in {path_part or md.name}")
    return errors


_OP_ROW = re.compile(r"^\|\s*`([a-z0-9_]+)`\s*\|", re.MULTILINE)


def check_traced_op_table() -> list:
    """The ARCHITECTURE.md op table must match the compiler registry."""
    from repro.nn.graph import _FWD_FACTORY
    md = ROOT / "docs" / "ARCHITECTURE.md"
    text = md.read_text()
    start = text.find("### Traced ops")
    if start < 0:
        return ["docs/ARCHITECTURE.md: missing 'Traced ops' section"]
    end = text.find("\n## ", start)
    section = text[start:end if end > 0 else len(text)]
    documented = set(_OP_ROW.findall(section)) - {"op"}
    registered = set(_FWD_FACTORY)
    errors = []
    for op in sorted(registered - documented):
        errors.append(f"docs/ARCHITECTURE.md: traced op `{op}` is "
                      "registered but missing from the Traced ops table")
    for op in sorted(documented - registered):
        errors.append(f"docs/ARCHITECTURE.md: Traced ops table lists "
                      f"`{op}`, which is not a registered op")
    return errors


def run_doctests(modules) -> int:
    failed = 0
    for name in modules:
        mod = importlib.import_module(name)
        result = doctest.testmod(mod)
        status = "ok" if result.failed == 0 else "FAILED"
        print(f"  doctest {name}: {result.attempted} examples, "
              f"{result.failed} failed [{status}]")
        failed += result.failed
    return failed


def main() -> int:
    print("== doctests ==")
    failed = run_doctests(DOCTEST_MODULES)

    print("== markdown links/anchors ==")
    paths = []
    for pattern in DOC_FILES:
        paths.extend(sorted(ROOT.glob(pattern)))
    errors = check_markdown(paths)
    for err in errors:
        print(f"  {err}")
    print(f"  checked {len(paths)} files, {len(errors)} broken "
          "links/anchors")

    print("== traced-op table ==")
    op_errors = check_traced_op_table()
    for err in op_errors:
        print(f"  {err}")
    print(f"  {len(op_errors)} drifted rows")
    return 1 if (failed or errors or op_errors) else 0


if __name__ == "__main__":
    sys.exit(main())
