"""Figure 4 — PCA representation shift on digits.

Paper shape: DIVA moves attacked digit-0 representations into the
digit-2 cluster for the adapted model while the original model's
representations mostly stay with digit 0.
"""

from .conftest import run_once


def test_fig4(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig4
    res = run_once(benchmark, lambda: exp_fig4.run(cfg, pipeline=pipeline))
    nat_q = res["natural"]["quant"]["fraction_near_target"]
    adv_q = res["attacked"]["quant"]["fraction_near_target"]
    adv_o = res["attacked"]["orig"]["fraction_near_target"]
    # adapted representations migrate toward the target cluster...
    assert adv_q > nat_q
    # ...and migrate more than the original model's do
    assert adv_q >= adv_o
