"""Figure 6: the quantization headline results.

- 6a: top-1 evasive success — PGD vs blackbox / semi-blackbox / whitebox
  DIVA across the three architectures (paper: whitebox 92.3-97%,
  semi-blackbox 71.1-96.2%, blackbox 30.3-77.2%, PGD 30.2-50.9%);
- 6b: top-k success for the same grid (2.6-4.2x PGD for whitebox);
- 6c: confidence delta — natural images vs PGD vs DIVA (paper: ~7.9%
  natural, 18.6-25% PGD, 56.6-72.4% DIVA);
- 6d: top-1 success vs number of attack steps, DIVA vs PGD on ResNet
  (paper: PGD plateaus ~40.8% by step 7, DIVA reaches 96.9% by step 11).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..attacks import DIVA, PGD, AttackTrace, generate_grid
from ..metrics import evaluate_attack, natural_confidence_delta
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)

    results: Dict = {"per_arch": {}, "dtype": cfg.dtype}
    rows = []
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        quant = pipe.quantized(arch)
        surr_orig = pipe.surrogate_original(arch)
        bb_orig = pipe.blackbox_surrogate_original(arch)
        bb_adapted = pipe.surrogate_adapted(arch)
        atk_set = pipe.attack_set([orig, quant], f"fig6-{arch}")

        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        attacks = {
            "pgd": PGD(quant, **kw),
            "diva": DIVA(orig, quant, c=cfg.c, **kw),
            "semi_blackbox_diva": DIVA(surr_orig, quant, c=cfg.c, **kw),
            "blackbox_diva": DIVA(bb_orig, bb_adapted, c=cfg.c, **kw),
        }
        # one engine pass over the whole threat-model grid: every attack
        # steps on the slot scheduler (distinct model pairs cannot share
        # compiled programs, so entries run in turn)
        advs = generate_grid(attacks, atk_set.x, atk_set.y)
        arch_res: Dict = {
            "natural_confidence_delta":
                natural_confidence_delta(orig, quant, atk_set.x, atk_set.y),
        }
        for name in attacks:
            rep = evaluate_attack(orig, quant, advs[name], atk_set.y,
                                  topk=cfg.topk)
            arch_res[name] = {
                "top1_success": rep.top1_success_rate,
                "topk_success": rep.top5_success_rate,
                "confidence_delta": rep.confidence_delta,
                "attack_only_success": rep.attack_only_success_rate,
            }
        results["per_arch"][arch] = arch_res
        rows.append([arch,
                     f"{arch_res['pgd']['top1_success']:.1%}",
                     f"{arch_res['blackbox_diva']['top1_success']:.1%}",
                     f"{arch_res['semi_blackbox_diva']['top1_success']:.1%}",
                     f"{arch_res['diva']['top1_success']:.1%}"])

    table_a = format_table(
        ["Architecture", "PGD", "Blackbox DIVA", "Semi-BB DIVA", "DIVA"],
        rows, title="Figure 6a — top-1 evasive success rate")
    results["table_6a"] = table_a

    rows_c = []
    for arch in ARCHITECTURES:
        r = results["per_arch"][arch]
        rows_c.append([arch, f"{r['natural_confidence_delta']:.1%}",
                       f"{r['pgd']['confidence_delta']:.1%}",
                       f"{r['diva']['confidence_delta']:.1%}"])
    table_c = format_table(
        ["Architecture", "Natural image", "PGD", "DIVA"],
        rows_c, title="Figure 6c — confidence delta (p_orig[y] - p_quant[y])")
    results["table_6c"] = table_c

    if verbose:
        print(table_a)
        rows_b = []
        for arch in ARCHITECTURES:
            r = results["per_arch"][arch]
            rows_b.append([arch, f"{r['pgd']['topk_success']:.1%}",
                           f"{r['blackbox_diva']['topk_success']:.1%}",
                           f"{r['semi_blackbox_diva']['topk_success']:.1%}",
                           f"{r['diva']['topk_success']:.1%}"])
        print(format_table(
            ["Architecture", "PGD", "Blackbox DIVA", "Semi-BB DIVA", "DIVA"],
            rows_b, title=f"Figure 6b — top-{cfg.topk} evasive success rate"))
        print(table_c)
    save_results("fig6", results)
    return results


def run_steps(cfg: Optional[ExperimentConfig] = None,
              pipeline: Optional[Pipeline] = None, arch: str = "resnet",
              verbose: bool = True) -> Dict:
    """Figure 6d: top-1 evasive success at every step count 1..t."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"fig6d-{arch}")

    curves: Dict[str, List[float]] = {}
    for name, attack in [
        ("pgd", PGD(quant, eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)),
        ("diva", DIVA(orig, quant, c=cfg.c, eps=cfg.eps, alpha=cfg.alpha,
                      steps=cfg.steps)),
    ]:
        trace = AttackTrace()
        attack.generate(atk_set.x, atk_set.y, trace=trace)
        curve = []
        for snap in trace.snapshots:
            rep = evaluate_attack(orig, quant, snap, atk_set.y, topk=cfg.topk)
            curve.append(rep.top1_success_rate)
        curves[name] = curve

    results = {"arch": arch, "steps": list(range(1, cfg.steps + 1)),
               "curves": curves}
    if verbose:
        rows = [[t + 1, f"{curves['pgd'][t]:.1%}", f"{curves['diva'][t]:.1%}"]
                for t in range(cfg.steps)]
        print(format_table(["Step", "PGD", "DIVA"], rows,
                           title=f"Figure 6d — top-1 success vs steps ({arch})"))
    save_results("fig6d", results)
    return results


def run_dtype_delta(cfg: Optional[ExperimentConfig] = None,
                    arch: str = "resnet", verbose: bool = True,
                    store=None) -> Dict:
    """Attack-dtype policy measurement (ROADMAP open item).

    Runs the fig6 whitebox DIVA/PGD cell for ``arch`` under both dtype
    policies — each on its own pipeline, so training, adaptation and
    attacks all happen at that precision — and records the top-1
    success-rate deltas into the fig6 results dict (saved as the
    ``dtype_deltas`` key of ``fig6_dtype``).
    """
    import dataclasses

    from ..nn import get_default_dtype, set_default_dtype

    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    per_dtype: Dict[str, Dict[str, float]] = {}
    entering_dtype = get_default_dtype()
    try:
        for dtype in ("float64", "float32"):
            pipe = Pipeline(dataclasses.replace(cfg, dtype=dtype), store=store)
            dcfg = pipe.cfg
            orig = pipe.original(arch)
            quant = pipe.quantized(arch)
            atk_set = pipe.attack_set([orig, quant], f"fig6-dtype-{arch}")
            kw = dict(eps=dcfg.eps, alpha=dcfg.alpha, steps=dcfg.steps)
            advs = generate_grid({"pgd": PGD(quant, **kw),
                                  "diva": DIVA(orig, quant, c=dcfg.c, **kw)},
                                 atk_set.x, atk_set.y)
            per_dtype[dtype] = {
                name: evaluate_attack(orig, quant, advs[name], atk_set.y,
                                      topk=dcfg.topk).top1_success_rate
                for name in advs
            }
    finally:
        set_default_dtype(entering_dtype)
    results = {
        "arch": arch,
        "per_dtype": per_dtype,
        "dtype_deltas": {
            name: per_dtype["float32"][name] - per_dtype["float64"][name]
            for name in per_dtype["float64"]
        },
    }
    if verbose:
        rows = [[name, f"{per_dtype['float64'][name]:.1%}",
                 f"{per_dtype['float32'][name]:.1%}",
                 f"{results['dtype_deltas'][name]:+.1%}"]
                for name in sorted(per_dtype["float64"])]
        print(format_table(["Attack", "float64", "float32", "delta"], rows,
                           title=f"Fig 6 dtype policy — top-1 success ({arch})"))
    save_results("fig6_dtype", results)
    return results
