"""Networked serving boundary: frame protocol, retries, idempotency,
crash recovery.

Everything deterministic runs on one shared
:class:`~repro.serve.ManualClock`: the session, the loopback server,
the retrying client and the fault injector all read it, and the
client's ``pump`` drives the server's event loop in-process — no
threads, no sleeps, no real timeouts.  The invariants extend the chaos
suite's across the wire:

- every ``ok`` result bit-identical to the job's solo in-process run,
  under drop/duplicate/delay/truncate frame faults and across a
  kill-and-restart;
- a retried idempotency key never double-executes (at-most-once
  execution under at-least-once delivery);
- refusals — backpressure, draining, expired deadlines, exhausted
  retries — are structured ServeErrors, never hangs or silence.
"""

import copy
import os
import threading

import numpy as np
import pytest

from repro.serve import (AdmissionError, DeadlineError, Journal,
                         ManualClock, RetryError, ServeSession, ShedError,
                         assign_arrivals, build_workload,
                         default_net_chaos_specs)
from repro.serve.net import (FrameParser, ProtocolError, ServeClient,
                             ServeServer, encode_frame, replay_net,
                             verify_net_parity)
from repro.serve.workload import replay_sequential

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

SPEC = {
    "version": 1, "name": "net-tiny", "seed": 5, "steps": 3,
    "attack_model": {"arch": "resnet", "num_classes": 6, "width": 4,
                     "image_size": 12},
    "edge_model": {"arch": "lenet", "num_classes": 6, "width": 4,
                   "image_size": 12, "in_channels": 1},
    "jobs": [
        {"kind": "diva", "rows": 4, "c": 1.0},
        {"kind": "predict", "rows": 8},
        {"kind": "pgd", "rows": 4, "eps": 8 / 255},
        {"kind": "predict_float", "rows": 6},
        {"kind": "fgsm", "rows": 4},
        {"kind": "cw", "rows": 3, "kappa": 0.0},
        {"kind": "nes", "rows": 2, "steps": 2, "n_samples": 2},
        {"kind": "predict", "rows": 8},
    ],
}


@pytest.fixture(scope="module")
def wl():
    spec = assign_arrivals(copy.deepcopy(SPEC), rate_hz=50.0, tenants=3)
    return build_workload(spec)


@pytest.fixture(scope="module")
def ref(wl):
    return replay_sequential(wl)["results"]


def _loopback(wl, **server_kw):
    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock)
    server = ServeServer(session, spec=wl.spec,
                         models=(wl.original, wl.adapted, wl.edge),
                         **server_kw)
    client = ServeClient(server.host, server.port, clock=clock,
                         attempt_timeout_s=0.25, pump=server.poll)
    return clock, session, server, client


def _check_identical(a, b):
    assert a.shape == b.shape and a.dtype == b.dtype
    assert np.array_equal(a, b)


# --------------------------------------------------------------------- #
# frame protocol
# --------------------------------------------------------------------- #

def test_frame_roundtrip_exact():
    arrays = {"x": np.arange(12, dtype=np.float32).reshape(3, 4),
              "y": np.array([1, 2, 3], dtype=np.int64)}
    raw = encode_frame({"op": "submit", "key": "k", "job": {"kind": "pgd"}},
                       arrays)
    parser = FrameParser()
    parser.feed(raw)
    (header, back, echoed), = parser.frames()
    assert header["op"] == "submit" and header["job"] == {"kind": "pgd"}
    assert echoed == raw and not parser.partial
    for name in arrays:
        _check_identical(arrays[name], back[name])


def test_frame_parser_waits_on_partial_and_splits():
    raw = encode_frame({"op": "health", "key": "a"}) + \
        encode_frame({"op": "ready", "key": "b"})
    parser = FrameParser()
    parser.feed(raw[:len(raw) // 2])
    got = [h["key"] for h, _, _ in parser.frames()]
    parser.feed(raw[len(raw) // 2:])
    got += [h["key"] for h, _, _ in parser.frames()]
    assert got == ["a", "b"] and not parser.partial


def test_frame_parser_refuses_corruption():
    raw = bytearray(encode_frame({"op": "health", "key": "a"}))
    raw[-1] ^= 0xFF                      # flip a payload byte: CRC must trip
    parser = FrameParser()
    parser.feed(bytes(raw))
    with pytest.raises(ProtocolError):
        list(parser.frames())
    bad_magic = b"XX" + encode_frame({"op": "health", "key": "a"})[2:]
    fresh = FrameParser()
    fresh.feed(bad_magic)
    with pytest.raises(ProtocolError):
        list(fresh.frames())


# --------------------------------------------------------------------- #
# loopback parity, clean and under chaos
# --------------------------------------------------------------------- #

def test_loopback_bit_parity_clean(wl, ref):
    out = verify_net_parity(wl, rate=20.0, reference=ref)
    assert out["outcome_counts"] == {"ok": len(wl.jobs)}
    assert out["retried"] == 0 and out["deduped"] == 0


def test_loopback_chaos_bit_parity_and_determinism(wl, ref):
    runs = [verify_net_parity(wl, fault_specs=default_net_chaos_specs(),
                              seed=FAULT_SEED, rate=20.0, reference=ref)
            for _ in range(2)]
    a, b = runs
    # the parity gate inside verify_net_parity already asserted every ok
    # job bit-identical and every refusal structured; here: determinism
    assert a["outcome_counts"] == b["outcome_counts"]
    assert a["retried"] == b["retried"] and a["deduped"] == b["deduped"]
    assert a["faults_fired"] == b["faults_fired"]
    lossy = sum(a["faults_fired"].get(pt, {}).get(kind, 0)
                for pt in ("net.client.send", "net.client.recv")
                for kind in ("drop", "truncate"))
    if lossy:                       # every lost frame must have been retried
        assert a["retried"] > 0


def test_retries_never_double_execute(wl, ref):
    out = verify_net_parity(wl, fault_specs=default_net_chaos_specs(),
                            seed=FAULT_SEED, rate=20.0, reference=ref)
    # at-most-once execution: duplicated/retried frames collapse onto
    # one accept per idempotency key, and every key resolves
    assert out["server"]["accepted"] == len(wl.jobs)
    assert sum(out["server"]["outcome_counts"].values()) == len(wl.jobs)
    assert out["client"]["frames_sent"] >= len(wl.jobs)


def test_idempotency_window_serves_recorded_bytes(wl, ref):
    _clock, session, server, client = _loopback(wl)
    try:
        job = wl.jobs[0]
        fut = client.submit(job.record, job.x, job.y, tenant=job.tenant)
        _check_identical(fut.result(), ref[0])
        key = next(iter(client._requests))
        # re-send the same key: served from the window, never re-run
        dispatches_before = len(session.dispatch_log)
        client._futures[key] = fut.__class__(
            lambda timeout=None: client._await(key, timeout))
        client._transmit(client._requests[key])
        _check_identical(client._futures[key].result(), ref[0])
        assert server.deduped == 1 and server.accepted == 1
        assert len(session.dispatch_log) == dispatches_before
    finally:
        client.close()
        server.shutdown()


# --------------------------------------------------------------------- #
# backpressure, drain, probes
# --------------------------------------------------------------------- #

def test_draining_server_sheds_new_work_structurally(wl, ref):
    _clock, _session, server, client = _loopback(wl)
    try:
        accepted = client.submit(wl.jobs[0].record, wl.jobs[0].x,
                                 wl.jobs[0].y)
        server.poll(drain=False)          # accepted before the drain begins
        server.begin_drain()
        assert client.ready() is False and client.health() is True
        refused = client.submit(wl.jobs[2].record, wl.jobs[2].x,
                                wl.jobs[2].y)
        with pytest.raises(ShedError):
            refused.result()
        assert refused.outcome == "rejected"
        # the accepted job keeps its promise through the drain
        _check_identical(accepted.result(), ref[0])
    finally:
        client.close()
        server.shutdown()


def test_graceful_shutdown_flushes_accepted_work(wl, ref):
    _clock, _session, server, client = _loopback(wl)
    futs = [client.submit(j.record, j.x, j.y, tenant=j.tenant)
            for j in wl.jobs[:3]]
    server.poll(drain=False)
    server.shutdown(drain=True)           # drains, settles, flushes, closes
    try:
        for i, fut in enumerate(futs):
            _check_identical(fut.result(), ref[i])
    finally:
        client.close()
    # the server is gone: a new submit exhausts its retries structurally
    late = client.submit(wl.jobs[3].record, wl.jobs[3].x)
    with pytest.raises(RetryError):
        late.result()


def test_admission_backpressure_crosses_the_wire(wl):
    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock, max_pending_jobs=1)
    server = ServeServer(session, spec=wl.spec,
                         models=(wl.original, wl.adapted, wl.edge))
    client = ServeClient(server.host, server.port, clock=clock,
                         attempt_timeout_s=0.25, pump=server.poll)
    try:
        first = client.submit(wl.jobs[0].record, wl.jobs[0].x, wl.jobs[0].y)
        second = client.submit(wl.jobs[2].record, wl.jobs[2].x,
                               wl.jobs[2].y)
        outcomes = set()
        for fut in (first, second):
            try:
                fut.result()
            except AdmissionError:
                pass
            outcomes.add(fut.outcome)
        assert outcomes == {"ok", "rejected"}
    finally:
        client.close()
        server.shutdown()


# --------------------------------------------------------------------- #
# deadlines: bounded waits end in DeadlineError, in- and cross-process
# --------------------------------------------------------------------- #

def test_result_timeout_raises_structured_deadline_error(wl, ref):
    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock)
    job = wl.jobs[0]
    fut = session.submit_attack(job.make_attack(), job.x, job.y)
    with pytest.raises(DeadlineError):
        fut.result(timeout=0.0)           # zero budget: no dispatch round
    assert not fut.done                   # still pending, not failed
    _check_identical(fut.result(), ref[0])


def test_client_overall_timeout_raises_deadline_error(wl):
    _clock, _session, server, client = _loopback(wl)
    client.max_retries = 50
    try:
        silent = client.submit(wl.jobs[0].record, wl.jobs[0].x,
                               wl.jobs[0].y)
        client.pump = lambda: 0           # the server never answers
        with pytest.raises(DeadlineError):
            silent.result(timeout=0.1)
        assert not silent.done            # the wait expired, not the job
    finally:
        client.close()
        server.kill()


# --------------------------------------------------------------------- #
# journal: kill-and-restart replays bit-identically
# --------------------------------------------------------------------- #

def test_kill_restart_recovers_bit_identically(wl, ref, tmp_path):
    path = str(tmp_path / "serve.journal")
    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock)
    first = ServeServer(session, spec=wl.spec,
                        models=(wl.original, wl.adapted, wl.edge),
                        journal_path=path)
    client = ServeClient(first.host, first.port, clock=clock,
                         attempt_timeout_s=0.25, pump=first.poll)
    futs = [client.submit(j.record, j.x, j.y, tenant=j.tenant)
            for j in wl.jobs[:3]]
    first.poll()                          # batch 1 completed + journaled
    futs += [client.submit(j.record, j.x, j.y, tenant=j.tenant)
             for j in wl.jobs[3:]]
    first.poll(drain=False)               # batch 2 accepted, never served
    assert first.stats["inflight"] == len(wl.jobs) - 3
    first.kill()                          # crash: nothing drains or flushes

    second = ServeServer(ServeSession(capacity=64, clock=clock),
                         spec=wl.spec,
                         models=(wl.original, wl.adapted, wl.edge),
                         journal_path=path, port=first.port)
    assert second.recovered_completed == 3
    assert second.recovered_incomplete == len(wl.jobs) - 3
    client.pump = second.poll
    try:
        for i, fut in enumerate(futs):
            _check_identical(fut.result(), ref[i])
        assert client.retries >= len(wl.jobs) - 3
        # the journal's outcome breakdown is the client-visible truth
        assert Journal.breakdown(path) == {"ok": len(wl.jobs)}
    finally:
        client.close()
        second.shutdown()


def test_journal_scan_tolerates_torn_tail_only(tmp_path):
    path = str(tmp_path / "torn.journal")
    with Journal(path) as journal:
        journal.accept("k0", {"op": "submit", "key": "k0"},
                       {"x": np.zeros((1, 2), dtype=np.float32)})
        journal.complete("k0", "ok", {"op": "result", "key": "k0"}, {})
        journal.accept("k1", {"op": "submit", "key": "k1"},
                       {"x": np.ones((1, 2), dtype=np.float32)})
    with open(path, "a") as fh:
        fh.write('{"type": "accept", "key": "k2", "he')   # died mid-write
    incomplete, completed = Journal.scan(path)
    assert list(completed) == ["k0"] and list(incomplete) == ["k1"]
    # the same torn line anywhere else is corruption, not a crash tail
    with open(path) as fh:
        lines = fh.read().splitlines()
    with open(path, "w") as fh:
        fh.write("\n".join([lines[-1]] + lines[:-1]) + "\n")
    with pytest.raises(ValueError):
        Journal.scan(path)


# --------------------------------------------------------------------- #
# load generation
# --------------------------------------------------------------------- #

def test_assign_arrivals_deterministic_and_optional():
    a = assign_arrivals(copy.deepcopy(SPEC), rate_hz=50.0, tenants=3)
    b = assign_arrivals(copy.deepcopy(SPEC), rate_hz=50.0, tenants=3)
    assert [j["arrival_offset_s"] for j in a["jobs"]] == \
        [j["arrival_offset_s"] for j in b["jobs"]]
    assert len({j["tenant"] for j in a["jobs"]}) == 3
    # per-tenant offsets are monotone (each tenant is its own process)
    by_tenant = {}
    for j in a["jobs"]:
        assert j["arrival_offset_s"] > by_tenant.get(j["tenant"], -1.0)
        by_tenant[j["tenant"]] = j["arrival_offset_s"]
    # old specs (no offsets) still materialize: everything arrives at 0
    legacy = build_workload(copy.deepcopy(SPEC))
    assert all(j.arrival_offset_s == 0.0 for j in legacy.jobs)


def test_replay_rate_compresses_simulated_time(wl, ref):
    slow = verify_net_parity(wl, rate=10.0, reference=ref)
    fast = verify_net_parity(wl, rate=100.0, reference=ref)
    assert slow["outcome_counts"] == fast["outcome_counts"]
    # 10x vs 100x replay: simulated makespan shrinks ~10x (clock moves
    # only on arrival gaps in a fault-free replay)
    assert slow["clock_s"] > 5 * fast["clock_s"] > 0


# --------------------------------------------------------------------- #
# a real socket server on a real thread (the --listen/--connect shape)
# --------------------------------------------------------------------- #

def test_threaded_server_real_clock_roundtrip(wl, ref):
    server = ServeServer(ServeSession(capacity=64), spec=wl.spec,
                         models=(wl.original, wl.adapted, wl.edge))
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01}, daemon=True)
    thread.start()
    client = ServeClient(server.host, server.port, attempt_timeout_s=10.0)
    try:
        assert client.health() and client.ready()
        futs = [(i, client.submit(wl.jobs[i].record, wl.jobs[i].x,
                                  wl.jobs[i].y))
                for i in (0, 1, 3)]
        for i, fut in futs:
            _check_identical(fut.result(), ref[i])
        stats = client.server_stats()
        assert stats["accepted"] == 3
        assert client.shutdown_server()
    finally:
        client.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
