"""Row-reproducible float GEMMs: fixed-order blocked accumulation.

numpy's float ``matmul`` is not *row-reproducible*: the BLAS backend
picks kernels, blocking and accumulation order by the full matrix
shape, so row ``i`` of ``(M, K) @ (K, F)`` can change in the last ulp
when ``M`` changes — the same sample's logits depend on which other
rows happened to share the batch.  That composition-dependence is why
the serving layer historically coalesced only the integer edge path
(exact by construction) and ran every float inference job on its own
pass.

This module closes the gap with a fixed-order blocked GEMM:

- the left operand is processed in fixed :data:`ROW_BLOCK`-row blocks,
  every block presented to BLAS as the *same* ``(ROW_BLOCK, K) @
  (K, F)`` call (full blocks ride one batched 3D ``matmul``, which
  runs the identical per-slice GEMM);
- a ragged tail is zero-padded to exactly ``ROW_BLOCK`` rows in a
  cached scratch buffer, never sub-divided — per-row results from
  differently-shaped calls differ bitwise, so the tail must use the
  one true call shape too.

Row ``i``'s bits therefore depend only on row ``i`` and the right
operand — never on ``M``, the row's position, or its co-batched rows —
which is exactly the property that makes cross-request float
coalescing (and, later, multi-worker float execution) value-neutral:
any partition of any merged batch produces identical per-row bytes.

The mode is a *per-thread* flag (:func:`row_reproducible` context
manager).  Compiled programs capture the mode at *plan build time* (the
kernel closures bake it in), so every plan-cache key that can hold a
float GEMM plan must include :func:`mode_key`; replaying a plan under
the other mode is a cache-keying bug, not a runtime dispatch.
Thread-locality matters for the worker pool (``repro.serve.pool``):
each worker thread enters and exits :func:`row_reproducible` around its
own float dispatches, and a shared flag would let one worker's exit
silently flip the mode under another worker mid-GEMM.  The tail-padding
scratch buffers are thread-local for the same reason — two workers
padding ragged tails of the same ``(K, dtype)`` geometry must not share
bytes.

The overhead is bounded and tracked: full-block batches pay ~1-2% over
raw ``np.matmul`` (the ``rowrep_gemm`` microbench gates it at 15%);
ragged tails pay for the zero-padding, which coalescing itself
amortizes away (merged batches fill blocks).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np

#: the one true GEMM row-block: every row of every batch is computed by
#: a ``(ROW_BLOCK, K) @ (K, F)`` BLAS call.  Part of :func:`mode_key`
#: (and thereby of every plan-cache key), because different block sizes
#: produce different — individually reproducible — bits.
ROW_BLOCK = 256

#: per-thread mode flag + tail scratch; worker-pool threads toggle the
#: mode independently, so neither may live at module scope
_tls = threading.local()


def _state_enabled() -> bool:
    return getattr(_tls, "enabled", False)


def _pad_cache() -> Dict[Tuple[int, str], np.ndarray]:
    cache = getattr(_tls, "pad_scratch", None)
    if cache is None:
        cache = _tls.pad_scratch = {}
    return cache


def enabled() -> bool:
    """Whether 2D float matmuls currently route through the fixed-order
    blocked kernel (on the calling thread)."""
    return _state_enabled()


def mode_key() -> Tuple[str, int]:
    """The cache-key component for the current mode.

    ``("rr", ROW_BLOCK)`` when row-reproducible execution is on,
    ``("rr", 0)`` otherwise.  Compiled plans bake the mode into their
    kernel closures at build time, so any plan cache that can hold a
    float GEMM must key on this — a legacy plan replayed inside a
    row-reproducible region (or vice versa) would silently produce the
    other mode's bits.
    """
    return ("rr", ROW_BLOCK if _state_enabled() else 0)


@contextmanager
def row_reproducible(on: bool = True):
    """Context manager switching the fixed-order GEMM on (or off).

    Nestable and exception-safe; the previous mode is restored on exit.
    The serving layer wraps every float-inference dispatch — coalesced,
    solo and eager alike — in this, so degradation down the ladder can
    change latency but never bytes.  The flag is per-thread: a pool
    worker's region never leaks into (or gets torn down by) another
    worker's.
    """
    prev = _state_enabled()
    _tls.enabled = bool(on)
    try:
        yield
    finally:
        _tls.enabled = prev


def _pad_buffer(k: int, dtype: np.dtype) -> np.ndarray:
    scratch = _pad_cache()
    key = (k, np.dtype(dtype).str)
    buf = scratch.get(key)
    if buf is None:
        buf = scratch[key] = np.zeros((ROW_BLOCK, k), dtype=dtype)
    return buf


def rr_matmul(a: np.ndarray, b: np.ndarray,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """``a @ b`` for 2D operands with row-reproducible per-row bits.

    Row ``i`` of the result is bit-identical for every batch ``a``
    containing that row, at any position, alongside any co-rows —
    because every row is computed by the same-shaped
    ``(ROW_BLOCK, K) @ (K, F)`` BLAS call (full blocks via one batched
    3D matmul, the tail zero-padded to the full block in cached
    scratch).  Unlike raw ``np.matmul``, whose kernel choice — and
    last-ulp accumulation order — varies with ``len(a)``.
    """
    m, k = a.shape
    f = b.shape[1]
    if out is None:
        out = np.empty((m, f), dtype=np.result_type(a, b))
    r = ROW_BLOCK
    nfull = (m // r) * r
    if nfull:
        dst = out[:nfull]
        if dst.flags.c_contiguous:
            np.matmul(a[:nfull].reshape(-1, r, k), b,
                      out=dst.reshape(-1, r, f))
        else:
            # rare non-contiguous destination: per-block 2D calls are
            # bit-identical to the batched form (same per-slice GEMM)
            for s in range(0, nfull, r):
                np.matmul(a[s:s + r], b, out=out[s:s + r])
    tail = m - nfull
    if tail:
        pad = _pad_buffer(k, a.dtype)
        pad[:tail] = a[nfull:]
        pad[tail:] = 0
        out[nfull:] = np.matmul(pad, b)[:tail]
    return out


def matmul(a: np.ndarray, b: np.ndarray,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """The kernel seam: fixed-order blocked GEMM for 2D float matmuls
    when the mode is on, raw ``np.matmul`` otherwise.

    Non-2D matmuls (the conv kernels' per-sample batched forms, whose
    per-slice call shapes are already composition-independent) and
    integer operands always take the raw path.
    """
    if (_state_enabled() and a.ndim == 2 and b.ndim == 2
            and a.dtype.kind == "f"):
        return rr_matmul(a, b, out=out)
    if out is None:
        return a @ b
    return np.matmul(a, b, out=out)


def validate_per_row(run, x: np.ndarray, rows: Optional[Tuple[int, ...]] = None
                     ) -> bool:
    """Bit-validate that ``run`` is composition-independent on ``x``.

    Replays probe rows of ``x`` alone through ``run`` and compares them
    bitwise against the full-batch result — the compile-time gate the
    row-reproducible contract promises: a plan that passes serves
    coalesced float traffic; one that fails falls back loudly.
    Probe rows default to the first, middle and last row (every block
    position a row can occupy: full-block interior and padded tail).
    """
    full = np.asarray(run(x))
    n = len(x)
    if rows is None:
        rows = tuple(sorted({0, n // 2, n - 1}))
    for i in rows:
        solo = np.asarray(run(x[i:i + 1]))
        if not (solo.shape[1:] == full.shape[1:]
                and np.array_equal(solo[0], full[i])):
            return False
    return True
