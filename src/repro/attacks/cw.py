"""Carlini-Wagner L-inf attack (the §5.4 baseline).

Uses the CW margin loss

    f(x) = max(Z(x)_y - max_{i != y} Z(x)_i, -kappa)

inside the PGD projection loop, the formulation Madry et al. (2018)
adopt for apples-to-apples L-inf comparison (and the hyper-parameter
setup the paper says it follows).  The gradient runs through the
compiled executor with an analytic margin-loss seed (tie gradients split
evenly, matching the eager ``Tensor.max`` subgradient), reusing the
pass's logits for the keep-best success check.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient)


def cw_margin_loss(logits: Tensor, y: np.ndarray, kappa: float = 0.0) -> Tensor:
    """Summed CW f6 loss (to be *descended*, i.e. we ascend its negation).

    Positive while the true class still wins; minimized at ``-kappa``
    once the runner-up overtakes by margin ``kappa``.
    """
    y = np.asarray(y)
    true_logit = logits.gather_rows(y)
    # mask out the true class with -inf before taking the runner-up max
    mask = np.zeros(logits.shape, dtype=logits.data.dtype)
    mask[np.arange(len(y)), y] = -np.inf
    other_best = (logits + Tensor(np.nan_to_num(mask, neginf=-1e9))).max(axis=1)
    margin = true_logit - other_best
    return margin.maximum(-kappa).sum()


def _cw_seed(logits: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """d(-sum f6)/d(logits), mirroring the eager tape's subgradients."""
    y = np.asarray(y)
    rows = np.arange(len(y))
    masked = logits.copy()
    masked[rows, y] += -1e9
    best = masked.max(axis=1, keepdims=True)
    ties = masked == best
    counts = ties.sum(axis=1, keepdims=True)
    margin = logits[rows, y] - best[:, 0]
    live = (margin >= -kappa).astype(logits.dtype)   # hinge subgradient
    seed = ties * (live[:, None] / counts)           # d(other_best) term
    seed[rows, y] -= live                            # d(true_logit) term
    return seed                                      # = -(e_y - d other)/dz


class CWLinf(Attack):
    """CW margin loss under an L-inf budget via iterated sign steps."""

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 kappa: float = 0.0, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.model = model
        self.model.eval()
        self.kappa = float(kappa)

    def serve_signature(self):
        """Merge CW jobs on the same model, step count and margin (the
        kappa hinge shapes every gradient seed, so it must match)."""
        return (type(self).__qualname__, id(self.model), self.steps,
                self.kappa)

    def _loop_spec(self, x: np.ndarray):
        """Whole-loop recipe: one compiled program, margin-loss seeds
        (``kappa`` read at seed time, like the per-step path).  Refused
        when the gradient or step rule is overridden or the model does
        not compile."""
        from .base import Attack
        from .loop import LoopSpec
        if (type(self).gradient_with_logits is not CWLinf.gradient_with_logits
                or type(self)._step is not Attack._step):
            return None
        ex = self._compiled(self.model, x)
        if ex is None:
            return None
        return LoopSpec(
            programs=[ex],
            seeds=lambda outs, y, variant: [_cw_seed(outs[0], y, self.kappa)],
            aux_of=lambda outs: outs[0])

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.gradient_with_logits(x_adv, y)[0]

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray,
                             variant: Optional[Dict[str, np.ndarray]] = None,
                             ) -> Tuple[np.ndarray, Any]:
        y = np.asarray(y)
        ex = self._compiled(self.model, x_adv)
        if ex is not None:
            logits, g = ex.value_and_input_grad(
                x_adv, lambda z: _cw_seed(z, y, self.kappa))
            return g, logits
        cap = {}

        def loss(xt: Tensor) -> Tensor:
            z = self.model(xt)
            cap["logits"] = z.data
            # ascend -f: push the true-class margin down
            return -cw_margin_loss(z, y, self.kappa)
        return input_gradient(loss, x_adv), cap["logits"]

    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        ex = self._compiled(self.model, x_adv)
        if ex is not None:
            return ex.replay(x_adv, copy=False)
        return self.model(Tensor(x_adv)).data

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """CW's goal: the target model mispredicts."""
        if aux is None:
            return None
        return aux.argmax(axis=1) != np.asarray(y)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        from ..training.evaluate import predict_labels
        return predict_labels(self.model, x_adv, batch_size=len(x_adv)) != y
