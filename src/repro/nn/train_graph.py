"""Compiled training steps: parameter-gradient programs.

:mod:`repro.nn.graph` compiles the *attack* hot loop — a frozen model's
forward plus the input gradient.  Training spends its time in a
different loop with the same shape: forward, loss, backward through the
**parameters**, optimizer update, thousands of times over fixed-size
batches.  This module compiles that loop:

``compile_train_step(module, loss_fn, example, target, optimizer)``
traces the module's train-mode forward once (reusing the tracer hooks
and kernel factories of :mod:`repro.nn.graph`) and lowers it into a
:class:`CompiledTrainStep` whose :meth:`~CompiledTrainStep.step` is a
single replay per batch:

- **parameter roots** — the program's variable set is the input *plus*
  every :class:`~repro.nn.module.Parameter`, so weight fake-quantization
  and pruning masks replay against the current weights instead of being
  folded, and the backward pass accumulates parameter gradients;
- **eager-tape backward order** — the backward program runs in exactly
  the topological order :meth:`Tensor.backward` would use on the traced
  tape, so gradient accumulation happens in the same floating-point
  order and compiled parameters stay **bit-identical** to eager ones;
- **eager loss head** — the loss itself runs on the eager tape over the
  (small) logits each step.  This keeps the compiler loss-agnostic
  (cross-entropy, distillation KD, anything returning a scalar Tensor)
  while the expensive model forward/backward replays; the seed gradient
  the head produces is bitwise the one the full eager tape would feed
  the model, because all head closures run before any model closure in
  the eager order;
- **replayable side effects** — BatchNorm running-statistic updates and
  QAT observer updates are recorded through the tracer's effect channel
  and re-executed at the same position in every replay, so buffers and
  quantization grids evolve exactly as they do eagerly;
- **fused optimizer update** — gradients are handed straight to
  :meth:`Optimizer.apply_gradients` (in-place fused SGD/Adam updates,
  bit-identical to ``step()``), so a warm training step allocates no
  tape nodes, no closures and no optimizer state.

Safety mirrors the forward executor: compilation *validates itself* by
running one eager step and one compiled step from identical module
state and requiring bit-identical logits, loss and every parameter
gradient; any mismatch — or any op/side effect the tracer cannot
capture — raises :class:`GraphUnsupported`, and
:func:`compile_train_step_or_none` turns that into the loud eager
fallback the training loops share.  Tracing and validation leave the
module untouched (buffers, observers and module RNGs are snapshotted
and restored in place), so a fallback run is bitwise the run that never
attempted to compile.

The batch size is pinned at trace time: training loops drive full
batches through the program and the ragged tail batch through the eager
tape, which is exactly the code path the program was validated against.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from . import tensor as _tensor
from .graph import (GraphUnsupported, ScratchPool, _BWD_FACTORY,
                    _FWD_FACTORY, _Program, _Tracer, _check_input_path)
from .module import Module, Parameter
from .optim import Optimizer
from .tensor import Tensor, get_default_dtype


class _TrainTracer(_Tracer):
    """Tracer that records train-time side effects instead of refusing."""

    allow_effects = True


class _ModuleStateSnapshot:
    """In-place snapshot of the mutable non-parameter state a train-mode
    forward touches: registered buffers (BatchNorm running statistics),
    observer state (QAT range tracking) and module-held RNGs (dropout).

    Restoration mutates the *existing* objects rather than swapping
    them, so effect closures recorded during tracing keep pointing at
    live state.
    """

    def __init__(self, module: Module):
        self._buffers = [(mod, name, np.array(val, copy=True))
                         for _, mod in module.named_modules()
                         for name, val in mod._buffers.items()]
        self._states = []
        self._rngs = []
        for _, mod in module.named_modules():
            obs = getattr(mod, "observer", None)
            if obs is not None and hasattr(obs, "observe"):
                self._states.append((obs, copy.deepcopy(obs.__dict__)))
            rng = getattr(mod, "_rng", None)
            if isinstance(rng, np.random.Generator):
                self._rngs.append((rng, copy.deepcopy(rng.bit_generator.state)))

    def restore(self) -> None:
        for mod, name, val in self._buffers:
            mod.set_buffer(name, val.copy())
        for obj, state in self._states:
            obj.__dict__.clear()
            obj.__dict__.update(copy.deepcopy(state))
        for rng, state in self._rngs:
            rng.bit_generator.state = copy.deepcopy(state)


def compile_train_step_or_none(module, loss_fn, example, target,
                               optimizer: Optimizer,
                               pool: Optional[ScratchPool] = None):
    """Best-effort :func:`compile_train_step`: None instead of raising.

    Any failure (unsupported op, non-Module model, un-replayable side
    effect, bit-parity validation mismatch) means "use the eager tape" —
    never an error.  The single fallback policy shared by ``fit``,
    ``distill`` and ``qat_finetune``.
    """
    try:
        return compile_train_step(module, loss_fn, example, target, optimizer,
                                  pool=pool)
    except Exception:
        return None


def compile_train_step(module: Module,
                       loss_fn: Callable[[Tensor, object], Tensor],
                       example: np.ndarray, target,
                       optimizer: Optimizer,
                       pool: Optional[ScratchPool] = None,
                       validate: bool = True) -> "CompiledTrainStep":
    """Trace one train-mode forward of ``module`` and compile the full
    training step (forward + loss + parameter gradients + optimizer).

    ``loss_fn(logits, target)`` must return a scalar Tensor; ``example``
    and ``target`` are a representative batch (the batch size is pinned).
    Raises :class:`GraphUnsupported` when the forward uses an op or side
    effect the executor cannot replay, or when the compiled step is not
    bit-identical to the eager one on the example batch.
    """
    if not isinstance(module, Module):
        raise GraphUnsupported("only Module models can be train-compiled")
    x = np.asarray(example)
    if x.dtype != get_default_dtype():
        x = x.astype(get_default_dtype())
    if x.ndim < 1 or len(x) < 1:
        raise GraphUnsupported("example batch must be non-empty")
    if _tensor._GRAPH_TRACER is not None:
        raise GraphUnsupported("nested tracing is not supported")
    snap = _ModuleStateSnapshot(module)
    # requires_grad=False mirrors the training loops: the input takes no
    # gradient, so e.g. the stem conv's input-gradient work is skipped in
    # the compiled backward exactly as the eager tape skips it.
    xt = Tensor(x)
    tracer = _TrainTracer(xt)
    _tensor._GRAPH_TRACER = tracer
    try:
        out = module(xt)
    finally:
        _tensor._GRAPH_TRACER = None
        snap.restore()
    if not isinstance(out, Tensor):
        raise GraphUnsupported("forward did not return a Tensor")
    out_id = tracer.ids.get(id(out))
    if out_id is None or out_id in tracer.leaves:
        raise GraphUnsupported("forward output was not produced by traced ops")
    roots = [xt] + [t for t in tracer.leaves.values()
                    if isinstance(t, Parameter)]
    _check_input_path(roots, out, tracer)
    prog = CompiledTrainStep(tracer, out_id, x, module, loss_fn, optimizer,
                             pool=pool)
    if validate:
        prog._validate(x, target)
    return prog


class CompiledTrainStep(_Program):
    """A flat, replayable training-step program for one (module,
    loss_fn, optimizer) triple at a fixed batch size."""

    _variable_batch = False

    def __init__(self, tracer: _Tracer, out_id: int, example: np.ndarray,
                 module: Module, loss_fn, optimizer: Optimizer,
                 pool: Optional[ScratchPool] = None):
        param_ids = {nid for nid, t in tracer.leaves.items()
                     if isinstance(t, Parameter)}
        super().__init__(tracer, out_id, example, pool=pool,
                         var_roots={tracer.input_id} | param_ids)
        self._module = module
        self._loss_fn = loss_fn
        self.optimizer = optimizer
        self._traced_training = bool(getattr(module, "training", True))

        # Gradient flow mirrors the eager tape's requires_grad
        # propagation: parameters are the only gradient roots.
        grad = set(param_ids)
        for op in self._var_ops:
            if any(i in grad for i in op.inputs):
                grad.add(op.out)
        if self._out_id not in grad:
            raise GraphUnsupported("output does not depend on any parameter")
        self._grad_set = grad

        # Forward program, with recorded side effects replayed at the
        # position they originally ran (an effect recorded after k ops
        # runs before the first variable op whose trace index is >= k).
        pos_of = {op.out: i for i, op in enumerate(tracer.ops)}
        effects = list(tracer.effects)
        fwd: List[Callable] = []
        k = 0
        for op in self._var_ops:
            p = pos_of[op.out]
            while k < len(effects) and effects[k][0] <= p:
                fwd.append(self._make_effect(*effects[k][1:]))
                k += 1
            fwd.append(_FWD_FACTORY[op.kind](self, op))
        for _, fn, nid in effects[k:]:
            fwd.append(self._make_effect(fn, nid))
        self._fwd_prog = fwd

        # Backward program in the exact topological order
        # ``Tensor.backward`` derives from the traced tape, so gradient
        # contributions accumulate in the same floating-point order as
        # the eager step (bit-parity is checked, not hoped for).  The
        # kernel factories read ``_var_set`` to decide where gradients
        # flow, so it is swapped to the gradient set while they bind.
        out_t = tracer.keep[out_id]
        topo: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(out_t, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for par in node._parents:
                if id(par) not in visited and par.requires_grad:
                    stack.append((par, False))
        op_by_tensor = {id(tracer.keep[op.out]): op for op in self._var_ops}
        value_var = self._var_set
        self._var_set = grad
        try:
            self._bwd_prog = [
                (_BWD_FACTORY[op.kind](self, op), op.out)
                for op in (op_by_tensor[id(t)] for t in reversed(topo)
                           if id(t) in op_by_tensor)]
        finally:
            self._var_set = value_var

        self._ensure(self._n0)
        tr_ids = tracer.ids
        self._opt_params = [(p, tr_ids.get(id(p))) for p in optimizer.params]
        self._all_params = [(p, tr_ids.get(id(p)))
                            for p in module.parameters()]
        #: parameter leaves re-synced every step (immune to ``.data``
        #: rebinds by schedulers/serialization between steps)
        self._leaf_sync = [(nid, t) for nid, t in self._leaves.items()
                           if isinstance(t, Parameter)]

    @property
    def batch_size(self) -> int:
        """The pinned batch size; other sizes must use the eager tape."""
        return self._n0

    def accepts(self, x: np.ndarray) -> bool:
        """Whether ``x`` matches the traced batch shape exactly — the
        training loops' dispatch gate (a shape-changing augment or a
        ragged tail batch must take the eager tape)."""
        return np.shape(x) == (self._n0,) + self._trailing

    def _make_effect(self, fn: Callable[[np.ndarray], None], nid: int):
        env = self._env

        def run(n, fn=fn, nid=nid):
            fn(env[nid])
        return run

    # -- one training step ---------------------------------------------- #
    def _forward_backward(self, x: np.ndarray, target):
        """Replay forward + effects, run the eager loss head, replay the
        backward.  Returns (loss value, logits view, gradient env)."""
        x = self._check_input(x)
        if len(x) != self._n0:
            raise ValueError(
                f"compiled train step is pinned to batch size {self._n0}, "
                f"got {len(x)}")
        env = self._env
        for nid, t in self._leaf_sync:
            env[nid] = t.data
        out = self._forward(x)
        logits = Tensor(out, requires_grad=True)
        loss = self._loss_fn(logits, target)
        if not isinstance(loss, Tensor) or loss.size != 1:
            raise GraphUnsupported("loss_fn must return a scalar Tensor")
        loss.backward()
        genv: List[Optional[np.ndarray]] = [None] * len(env)
        gowned: List[bool] = [False] * len(env)
        genv[self._out_id] = logits.grad
        n = self._n0
        for run, out_nid in self._bwd_prog:
            go = genv[out_nid]
            if go is None:
                continue
            run(go, genv, gowned, n)
            genv[out_nid] = None
        return float(loss.data), out, genv

    def step(self, x: np.ndarray, target) -> float:
        """One fused training step: replay, loss, parameter gradients,
        optimizer update.  Returns the batch loss."""
        if bool(getattr(self._module, "training", True)) != self._traced_training:
            raise RuntimeError(
                "module train/eval mode changed since compilation; "
                "recompile the train step")
        loss, _, genv = self._forward_backward(x, target)
        self.optimizer.apply_gradients(
            [(p, genv[nid] if nid is not None else None)
             for p, nid in self._opt_params])
        return loss

    # -- validation ----------------------------------------------------- #
    def _validate(self, example: np.ndarray, target) -> None:
        """One eager step vs one compiled step from identical module
        state: logits, loss and every parameter gradient must match
        bit-for-bit, else the program is rejected."""
        module = self._module
        rng = np.random.default_rng(0)
        xv = (example + rng.normal(0.0, 1e-2, size=example.shape)
              ).astype(self._dtype)
        snap = _ModuleStateSnapshot(module)
        try:
            # stale gradients (a preceding training loop's last batch
            # survives Module.copy_structure) would contaminate the
            # eager reference: backward() accumulates on top of them
            module.zero_grad()
            out_t = module(Tensor(xv))
            loss_t = self._loss_fn(out_t, target)
            if not isinstance(loss_t, Tensor) or loss_t.size != 1:
                raise GraphUnsupported("loss_fn must return a scalar Tensor")
            loss_t.backward()
            ref_logits = out_t.data.copy()
            ref_loss = float(loss_t.data)
            ref_grads = [None if p.grad is None else p.grad.copy()
                         for p, _ in self._all_params]
        finally:
            module.zero_grad()
            snap.restore()
        try:
            loss_v, logits, genv = self._forward_backward(xv, target)
        finally:
            snap.restore()
        if logits.shape != ref_logits.shape or \
                not np.array_equal(logits, ref_logits):
            raise GraphUnsupported(
                "compiled training forward is not bit-identical to the "
                "eager tape")
        if loss_v != ref_loss:
            raise GraphUnsupported(
                "compiled training loss is not bit-identical to the "
                "eager tape")
        for (p, nid), rg in zip(self._all_params, ref_grads):
            cg = genv[nid] if nid is not None else None
            if (cg is None) != (rg is None):
                raise GraphUnsupported(
                    f"compiled gradient presence differs for parameter "
                    f"{p.name or p.shape}")
            if cg is not None and not np.array_equal(cg, rg):
                raise GraphUnsupported(
                    f"compiled gradient is not bit-identical for parameter "
                    f"{p.name or p.shape}")
