"""Generic supervised training loop used across the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.optim import Adam, CosineLR, Optimizer, SGD
from ..nn.tensor import Tensor
from .evaluate import evaluate_accuracy


@dataclass
class FitResult:
    """Per-epoch training history."""

    train_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> Optional[float]:
        return self.val_accuracy[-1] if self.val_accuracy else None


def fit(model: Module, x_train: np.ndarray, y_train: np.ndarray,
        epochs: int = 10, batch_size: int = 64, lr: float = 0.01,
        momentum: float = 0.9, weight_decay: float = 1e-4,
        optimizer: Optional[Optimizer] = None,
        x_val: Optional[np.ndarray] = None, y_val: Optional[np.ndarray] = None,
        augment: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
        cosine: bool = True, seed: int = 0,
        log_fn: Optional[Callable[[str], None]] = None,
        use_compiled: bool = True) -> FitResult:
    """Train ``model`` with softmax cross-entropy.

    Deterministic for a given ``seed``.  Pass an ``augment`` callable
    (e.g. :func:`repro.data.transforms.augment_batch`) to enable data
    augmentation; it receives (batch, rng).

    Full-size batches run through a compiled train-step program
    (:func:`repro.nn.train_graph.compile_train_step`) when the model
    supports it — validated at compile time to produce bit-identical
    parameters, so results do not depend on whether compilation
    succeeded.  The ragged tail batch (and everything, when compilation
    falls back or ``use_compiled=False``) uses the eager tape.
    """
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    sched = CosineLR(opt, t_max=epochs) if cosine and optimizer is None else None
    n = len(x_train)
    step = None
    if use_compiled and isinstance(model, Module):
        from ..nn.train_graph import compile_train_step_or_none
        model.train()
        nb = min(batch_size, n)
        step = compile_train_step_or_none(model, F.cross_entropy,
                                          x_train[:nb], y_train[:nb], opt)
        if step is None and log_fn:
            log_fn("train-step compilation unavailable; using the eager tape")
    result = FitResult()
    for epoch in range(epochs):
        model.train()
        order = rng.permutation(n)
        total = 0.0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            xb = x_train[idx]
            if augment is not None:
                xb = augment(xb, rng)
            yb = y_train[idx]
            if step is not None and step.accepts(xb):
                batch_loss = step.step(xb, yb)
            else:
                logits = model(Tensor(xb))
                loss = F.cross_entropy(logits, yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
                batch_loss = float(loss.data)
            total += batch_loss * len(idx)
        result.train_loss.append(total / n)
        if x_val is not None:
            acc = evaluate_accuracy(model, x_val, y_val)
            result.val_accuracy.append(acc)
            if log_fn:
                log_fn(f"epoch {epoch}: loss={total / n:.4f} val_acc={acc:.3f}")
        elif log_fn:
            log_fn(f"epoch {epoch}: loss={total / n:.4f}")
        if sched is not None:
            sched.step()
        model.eval()
    return result
