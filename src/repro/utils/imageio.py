"""Minimal image writing (PPM/PGM) — no imaging libraries available.

Used by the example scripts to dump original / noise / attacked images
(the paper's Fig 3 and Fig 9 panels) as portable pixmaps any viewer
opens.
"""

from __future__ import annotations

import os

import numpy as np


def _to_uint8(img: np.ndarray) -> np.ndarray:
    return np.clip(np.asarray(img) * 255.0 + 0.5, 0, 255).astype(np.uint8)


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write a (3, H, W) float image in [0, 1] as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {image.shape}")
    h, w = image.shape[1:]
    data = _to_uint8(image).transpose(1, 2, 0).tobytes()
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(data)


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write a (H, W) or (1, H, W) float image in [0, 1] as binary PGM."""
    image = np.asarray(image)
    if image.ndim == 3:
        if image.shape[0] != 1:
            raise ValueError(f"expected single channel, got {image.shape}")
        image = image[0]
    h, w = image.shape
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode())
        f.write(_to_uint8(image).tobytes())


def noise_to_image(noise: np.ndarray) -> np.ndarray:
    """Rescale a signed perturbation to [0, 1] for visualization
    (matching the paper's 'attack noise' panels)."""
    noise = np.asarray(noise)
    peak = np.abs(noise).max()
    if peak == 0:
        return np.full_like(noise, 0.5)
    return 0.5 + noise / (2 * peak)
