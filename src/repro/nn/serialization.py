"""State-dict persistence on top of ``numpy.savez_compressed``."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module


def save_state(model: Module, path: str) -> None:
    """Save a model's state dict to an ``.npz`` file."""
    state = model.state_dict()
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **{k: v for k, v in state.items()})


def load_state(model: Module, path: str, strict: bool = True) -> Module:
    """Load a state dict saved by :func:`save_state` into ``model``."""
    with np.load(path) as npz:
        state: Dict[str, np.ndarray] = {k: npz[k] for k in npz.files}
    model.load_state_dict(state, strict=strict)
    return model
