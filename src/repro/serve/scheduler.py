"""Request-coalescing scheduler: many jobs, one compiled pass at a time.

The multi-tenant serving problem: heterogeneous requests arrive over
time — DIVA/PGD/CW/FGSM attack jobs against a deployed (original,
adapted) pair, NES query streams, plain :meth:`EdgeModel.predict
<repro.edge.engine.EdgeModel.predict>` scoring — and most of them want
the *same* compiled resources.  Running each request alone wastes the
two things the compiled legs made cheap: program compilation (paid per
attack instance today) and pass occupancy (a 4-row request steps 4-row
gradient batches through machinery that is just as happy with 64).

:class:`Scheduler` fixes both without touching results:

- **compatibility keys** — every job maps to a group key.  Attack jobs
  coalesce when their attacks report equal
  :meth:`~repro.attacks.base.Attack.serve_signature` (same class, same
  model objects, same step count, same non-per-item parameters) over
  the same input shape/dtype; per-item parameters (``eps``, ``alpha``,
  ``keep_best`` and the attack's declared sweep params such as DIVA's
  ``c``) never block coalescing because
  :func:`~repro.attacks.engine.run_scheduled` already takes them as
  per-row vectors.  Edge-inference jobs coalesce per
  :class:`~repro.edge.engine.EdgeModel`.  Everything else (NES and
  momentum attacks with full-batch RNG/velocity state, attacks with no
  signature) runs solo.
- **arrival-order dispatch (no starvation)** — the dispatch loop always
  takes the *oldest pending job* as the head of the next batch and then
  folds in every other pending compatible job up to ``max_batch_rows``.
  Group membership is frozen at dispatch, so a stream of compatible
  arrivals can never push an incompatible job back: job *i* is
  dispatched no later than the *i*-th round (asserted by the fairness
  tests).
- **value-neutral merging** — a merged attack batch is exactly the
  tiling :meth:`Attack.generate_sweep` already performs (per-row
  parameter vectors into one ``run_scheduled`` call, each job's own
  ``_init`` for its rows), and per-sample trajectories depend only on
  that sample's own gradients; merged edge batches ride the integer
  path, which is exact per row.  Both are bit-identical to running each
  job alone — the scheduler may only change wall-time, never bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..attacks.base import Attack
from ..attacks.engine import run_scheduled


class JobError(RuntimeError):
    """Raised by :meth:`JobFuture.result` when the job's run failed."""


class JobFuture:
    """Handle to one submitted job's eventual result.

    ``result()`` drives the owning session until this job resolves (the
    scheduler is single-threaded and synchronous — there is no waiting,
    only work).  A failed job re-raises as :class:`JobError` with the
    original exception chained.
    """

    def __init__(self, drain: Callable[[], None]):
        self._drain = drain
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def result(self) -> Any:
        if not self._done:
            self._drain()
        if not self._done:        # pragma: no cover - defensive
            raise JobError("job did not resolve after a full drain")
        if self._error is not None:
            raise JobError(str(self._error)) from self._error
        return self._value


@dataclass
class Job:
    """One queued request (attack or inference) plus its future."""

    kind: str                       # "attack" | "predict"
    seq: int
    x: np.ndarray
    future: JobFuture
    y: Optional[np.ndarray] = None
    attack: Optional[Attack] = None
    model: Any = None               # EdgeModel for "predict" jobs

    @property
    def rows(self) -> int:
        return len(self.x)


@dataclass
class DispatchRecord:
    """One scheduling decision, kept for fairness tests and stats."""

    key: Any
    seqs: Tuple[int, ...]
    rows: int
    coalesced: bool = field(init=False)

    def __post_init__(self):
        self.coalesced = len(self.seqs) > 1


def _group_key(job: Job):
    """Compatibility key; a unique key (by ``seq``) means "runs solo"."""
    if job.kind == "predict":
        return ("predict", id(job.model), job.x.shape[1:], job.x.dtype.str)
    atk = job.attack
    sig = atk.serve_signature()
    if sig is None or not atk.shrink_done:
        return ("solo", job.seq)
    return ("attack", sig, job.x.shape[1:], job.x.dtype.str)


class Scheduler:
    """Arrival-order batching of compatible jobs onto shared programs.

    Parameters
    ----------
    capacity:
        Active-slot count handed to
        :func:`~repro.attacks.engine.run_scheduled` and the chunk size
        for merged edge-inference batches.
    max_batch_rows:
        Ceiling on the summed rows of one coalesced dispatch; pending
        compatible jobs beyond it wait for the next round (they keep
        their arrival-order priority).
    predict_batch:
        Chunk size for merged edge-inference batches (the per-shape
        program cache amortizes best over one fixed chunk shape).
    """

    def __init__(self, capacity: int = 64, max_batch_rows: int = 512,
                 predict_batch: int = 256):
        if capacity < 1 or max_batch_rows < 1 or predict_batch < 1:
            raise ValueError("capacity, max_batch_rows and predict_batch "
                             "must be >= 1")
        self.capacity = int(capacity)
        self.max_batch_rows = int(max_batch_rows)
        self.predict_batch = int(predict_batch)
        self.pending: "deque[Job]" = deque()
        self.dispatch_log: List[DispatchRecord] = []
        self._seq = 0

    # -- queueing ------------------------------------------------------- #
    def enqueue(self, job: Job) -> Job:
        job.seq = self._seq
        self._seq += 1
        self.pending.append(job)
        return job

    def __len__(self) -> int:
        return len(self.pending)

    # -- dispatch ------------------------------------------------------- #
    def run_pending(self) -> int:
        """Serve the queue to empty; returns the number of dispatches.

        Membership of each batch is decided when its head job (always
        the oldest pending) is popped — jobs enqueued mid-run join the
        tail and cannot delay anything already queued.
        """
        rounds = 0
        while self.pending:
            head = self.pending.popleft()
            key = _group_key(head)
            group = [head]
            rows = head.rows
            if key[0] != "solo":
                kept: List[Job] = []
                for job in self.pending:
                    if (_group_key(job) == key
                            and rows + job.rows <= self.max_batch_rows):
                        group.append(job)
                        rows += job.rows
                    else:
                        kept.append(job)
                self.pending = deque(kept)
            self.dispatch_log.append(
                DispatchRecord(key, tuple(j.seq for j in group), rows))
            self._run_group(head.kind, group)
            rounds += 1
        return rounds

    def _run_group(self, kind: str, group: List[Job]) -> None:
        """Dispatch with blast-radius control: if a *coalesced* batch
        fails (one tenant's malformed rows, say), every member is
        retried solo so innocent jobs still complete and only the
        faulty one carries the error."""
        dispatch = (self._dispatch_predict if kind == "predict"
                    else self._dispatch_attack)
        try:
            dispatch(group)
        except Exception as exc:         # noqa: BLE001 - job isolation
            if len(group) == 1:
                group[0].future._fail(exc)
                return
            for job in group:
                try:
                    dispatch([job])
                except Exception as solo_exc:   # noqa: BLE001
                    job.future._fail(solo_exc)

    # -- attack batches -------------------------------------------------- #
    def _dispatch_attack(self, group: List[Job]) -> None:
        """One scheduled pass over the merged rows of ``group``.

        Mirrors :meth:`Attack.generate_sweep`'s tiling exactly, with one
        "variant" per job: per-row ``eps``/``alpha``/``keep_best`` (and
        sweep-parameter) vectors taken from each job's own attack, each
        job's rows initialized by its own attack's ``_init`` (so
        ``random_start`` streams match a solo run), and the group head's
        attack driving the gradient passes.  Per-sample trajectories are
        independent, so every job's slice is bit-identical to
        ``job.attack.generate(job.x, job.y)`` run alone.
        """
        rep = group[0].attack
        if len(group) == 1 and not rep.shrink_done:
            # full-batch gradient state (momentum, NES noise): the slot
            # scheduler cannot host it, and the batch partition is part
            # of the result (per-batch RNG/velocity state), so the job
            # must run with generate's own default batching — exactly
            # what `attack.generate(x, y)` alone would do
            job = group[0]
            job.future._resolve(rep.generate(job.x, job.y))
            return
        rep._refresh_compiled()
        xs = np.concatenate([j.x for j in group], axis=0)
        ys = np.concatenate([np.asarray(j.y) for j in group])
        dtype = xs.dtype
        eps = np.concatenate([
            np.full(j.rows, j.attack.eps, dtype=dtype) for j in group])
        alpha = np.concatenate([
            np.full(j.rows, j.attack.alpha, dtype=dtype) for j in group])
        check = np.concatenate([
            np.full(j.rows, j.attack.keep_best, dtype=bool) for j in group])
        params: Optional[Dict[str, np.ndarray]] = None
        if len(group) > 1 and rep.sweep_params:
            params = {key: np.concatenate([
                np.full(j.rows, float(getattr(j.attack, key)),
                        dtype=np.float64) for j in group])
                for key in sorted(rep.sweep_params)}
        adv0 = np.concatenate([j.attack._init(j.x) for j in group], axis=0)
        adv = run_scheduled(rep, xs, ys, adv0, eps, alpha, check, params,
                            capacity=self.capacity)
        start = 0
        for job in group:
            job.future._resolve(adv[start:start + job.rows].copy())
            start += job.rows

    # -- inference batches ----------------------------------------------- #
    def _dispatch_predict(self, group: List[Job]) -> None:
        """Merged rows through one shared per-shape edge program.

        The integer path is exact per row (float64 GEMMs on sub-2**53
        integers, elementwise requantization), so chunking the merged
        batch differently from each solo ``predict`` call cannot change
        a single bit of any job's logits.
        """
        model = group[0].model
        xs = np.concatenate([j.x for j in group], axis=0)
        out = model.predict(xs, batch_size=self.predict_batch)
        start = 0
        for job in group:
            # copy: a view would alias every tenant's result to one
            # merged buffer (and pin all of it for as long as any
            # caller keeps its small slice)
            job.future._resolve(out[start:start + job.rows].copy())
            start += job.rows
