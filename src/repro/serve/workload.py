"""Recorded mixed workloads: build, save, replay — serve vs sequential.

The acceptance story for the serving layer is a *recorded* stream of
heterogeneous requests (attack jobs and plain inference jobs, arrival
order interleaved) that can be replayed two ways and compared:

- ``sequential`` — each job alone, in arrival order, exactly as the
  pre-serve codebase would have handled requests (every attack instance
  compiles its own programs; every predict call batches only its own
  rows);
- ``serve`` — all jobs through one :class:`~repro.serve.session.
  ServeSession`, sharing a plan cache and coalescing compatible jobs.

Per-job results must match bit for bit between the two replays
(:func:`verify_parity` asserts it); the throughput ratio is the
``serve_throughput`` entry of the BENCH trajectory.

A workload *spec* is a small JSON-serializable dict — seeds, model
hyper-parameters, and one record per job — so a workload can be
committed, shipped to the bench's subprocess-isolated arms, or replayed
by the ``repro-exp serve`` CLI subcommand.  Materialization
(:func:`build_workload`) deterministically reconstructs models, data and
attack instances from the spec; it never stores arrays.

Job kinds and their materialization:

===========  ==========================================================
``diva``     :class:`~repro.attacks.diva.DIVA` on the workload's
             (original, adapted) resnet pair; ``c``/``eps``/``alpha``
             per job.
``pgd``      :class:`~repro.attacks.pgd.PGD` on the adapted model.
``cw``       :class:`~repro.attacks.cw.CWLinf` on the adapted model.
``fgsm``     FGSM expressed as its exact PGD special case —
             ``steps=1, alpha=eps, keep_best=False`` reproduces
             :func:`repro.attacks.fgsm.fgsm` step for step — so
             single-step jobs ride the same scheduler.
``nes``      :class:`~repro.attacks.nes.NESDiva` semi-blackbox query
             stream (full-batch RNG state: never coalesced, served
             solo in arrival order).
``predict``  plain :meth:`EdgeModel.predict
             <repro.edge.engine.EdgeModel.predict>` on the workload's
             int8 edge artifact.
===========  ==========================================================

Doctest — specs are plain data and round-trip through JSON::

    >>> spec = mixed_workload_spec(scale=1)
    >>> import json
    >>> spec == json.loads(json.dumps(spec))
    True
    >>> sorted({j["kind"] for j in spec["jobs"]})
    ['cw', 'diva', 'fgsm', 'nes', 'pgd', 'predict']
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .session import ServeSession

#: spec format version, bumped on incompatible schema changes
SPEC_VERSION = 1


def mixed_workload_spec(scale: int = 2, seed: int = 0) -> Dict[str, Any]:
    """The default recorded workload: interleaved attack + inference.

    ``scale`` multiplies the request count (not the per-job size), so
    occupancy stays "mixed": many small attack probes (4-8 rows each,
    the shape of real per-user requests) plus moderate inference
    batches.  Arrival order interleaves kinds and parameters so
    coalescing has to work across gaps, not just on adjacent twins.
    """
    jobs: List[Dict[str, Any]] = []
    eps_grid = [8 / 255, 16 / 255, 12 / 255]
    c_grid = [1.0, 0.5, 2.0]
    for i in range(scale):
        e = eps_grid[i % len(eps_grid)]
        jobs += [
            {"kind": "diva", "rows": 6, "c": c_grid[i % 3], "eps": e},
            {"kind": "predict", "rows": 24},
            {"kind": "pgd", "rows": 6, "eps": e},
            {"kind": "diva", "rows": 4, "c": c_grid[(i + 1) % 3]},
            {"kind": "fgsm", "rows": 8, "eps": e},
            {"kind": "predict", "rows": 16},
            {"kind": "cw", "rows": 4, "kappa": 0.0},
            {"kind": "diva", "rows": 6, "eps": eps_grid[(i + 2) % 3]},
            {"kind": "nes", "rows": 2, "steps": 3, "n_samples": 2},
            {"kind": "pgd", "rows": 4, "alpha": 2 / 255},
            {"kind": "predict", "rows": 24},
            {"kind": "cw", "rows": 4, "kappa": 0.0},
        ]
    return {
        "version": SPEC_VERSION,
        "name": f"mixed-x{scale}",
        "seed": seed,
        "steps": 10,
        "attack_model": {"arch": "resnet", "num_classes": 10, "width": 8,
                         "image_size": 16},
        "edge_model": {"arch": "lenet", "num_classes": 10, "width": 8,
                       "image_size": 16, "in_channels": 1},
        "jobs": jobs,
    }


def save_workload(spec: Dict[str, Any], path: str) -> str:
    with open(path, "w") as fh:
        json.dump(spec, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_workload(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        spec = json.load(fh)
    if spec.get("version") != SPEC_VERSION:
        raise ValueError(f"unsupported workload spec version "
                         f"{spec.get('version')!r} (expected {SPEC_VERSION})")
    return spec


@dataclass
class MaterializedJob:
    """One replayable request: inputs plus a factory for its attack."""

    kind: str
    x: np.ndarray
    y: Optional[np.ndarray]
    make_attack: Optional[Any]      # zero-arg factory, None for predict
    model: Any = None               # EdgeModel for predict jobs


@dataclass
class Workload:
    """Materialized spec: fixed server-side models + the request list."""

    spec: Dict[str, Any]
    original: Any
    adapted: Any
    edge: Any
    jobs: List[MaterializedJob]

    @property
    def rows(self) -> int:
        return sum(len(j.x) for j in self.jobs)


def build_workload(spec: Dict[str, Any]) -> Workload:
    """Deterministically materialize models, data and jobs from a spec.

    The server-side state mirrors the bench fixtures: an untrained
    (seeded) original model, its calibrated+frozen 8-bit QAT adaptation
    as the attack target pair, and a separately quantized feed-forward
    model compiled to the int8 edge artifact for inference jobs.
    Attack-job labels are the original model's own predictions, so
    every probe starts un-succeeded (no random-label degeneracy).
    """
    from ..attacks import CWLinf, DIVA, NESDiva, PGD
    from ..edge import compile_edge
    from ..models import build_model
    from ..quantization import calibrate, prepare_qat
    from ..training import predict_labels

    rng = np.random.default_rng(spec["seed"])
    am = spec["attack_model"]
    em = spec["edge_model"]
    steps = int(spec.get("steps", 10))

    original = build_model(am["arch"], num_classes=am["num_classes"],
                           width=am["width"], seed=spec["seed"])
    original.eval()
    calib = rng.random((16, 3, am["image_size"], am["image_size"]),
                       ).astype(np.float32)
    adapted = prepare_qat(original, weight_bits=8)
    calibrate(adapted, calib)
    adapted.freeze()
    adapted.eval()

    edge_f = build_model(em["arch"], num_classes=em["num_classes"],
                         width=em["width"], image_size=em["image_size"],
                         in_channels=em.get("in_channels", 1),
                         seed=spec["seed"] + 1)
    edge_f.eval()
    edge_calib = rng.random(
        (16, em.get("in_channels", 1), em["image_size"], em["image_size"]),
    ).astype(np.float32)
    edge_q = prepare_qat(edge_f, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(edge_q, edge_calib)
    edge_q.freeze()
    edge = compile_edge(edge_q, em["num_classes"])

    jobs: List[MaterializedJob] = []
    for i, rec in enumerate(spec["jobs"]):
        kind = rec["kind"]
        rows = int(rec["rows"])
        if kind == "predict":
            x = rng.random((rows, em.get("in_channels", 1),
                            em["image_size"], em["image_size"]),
                           ).astype(np.float32)
            jobs.append(MaterializedJob(kind, x, None, None, model=edge))
            continue
        x = rng.random((rows, 3, am["image_size"], am["image_size"]),
                       ).astype(np.float32)
        y = predict_labels(original, x)
        eps = float(rec.get("eps", 8 / 255))
        alpha = float(rec.get("alpha", 1 / 255))
        n_steps = int(rec.get("steps", steps))
        if kind == "diva":
            c = float(rec.get("c", 1.0))
            make = (lambda c=c, eps=eps, alpha=alpha, n=n_steps:
                    DIVA(original, adapted, c=c, eps=eps, alpha=alpha,
                         steps=n))
        elif kind == "pgd":
            make = (lambda eps=eps, alpha=alpha, n=n_steps:
                    PGD(adapted, eps=eps, alpha=alpha, steps=n))
        elif kind == "cw":
            kappa = float(rec.get("kappa", 0.0))
            make = (lambda eps=eps, alpha=alpha, n=n_steps, k=kappa:
                    CWLinf(adapted, eps=eps, alpha=alpha, steps=n, kappa=k))
        elif kind == "fgsm":
            # FGSM == PGD(steps=1, alpha=eps, keep_best=False): one
            # eps-sized sign step from the natural sample
            make = (lambda eps=eps:
                    PGD(adapted, eps=eps, alpha=eps, steps=1,
                        keep_best=False))
        elif kind == "nes":
            ns = int(rec.get("n_samples", 4))
            make = (lambda eps=eps, alpha=alpha, n=n_steps, ns=ns, s=i:
                    NESDiva(original, adapted, n_samples=ns, eps=eps,
                            alpha=alpha, steps=n, seed=s))
        else:
            raise ValueError(f"unknown workload job kind {kind!r}")
        jobs.append(MaterializedJob(kind, x, y, make))
    return Workload(spec, original, adapted, edge, jobs)


def replay_sequential(workload: Workload) -> Dict[str, Any]:
    """Each job alone, in arrival order — the pre-serve baseline.

    Every attack job gets a fresh instance from its factory (distinct
    requests hold distinct configurations; nothing is shared but the
    models themselves), and inference jobs call ``predict`` on their own
    rows only — exactly what a naive per-request handler would do.
    """
    results = []
    t0 = time.perf_counter()
    for job in workload.jobs:
        if job.kind == "predict":
            results.append(job.model.predict(job.x))
        else:
            results.append(job.make_attack().generate(job.x, job.y))
    elapsed = time.perf_counter() - t0
    return {"results": results, "seconds": elapsed,
            "rows": workload.rows, "jobs": len(workload.jobs)}


def replay_serve(workload: Workload, capacity: int = 64,
                 session: Optional[ServeSession] = None) -> Dict[str, Any]:
    """All jobs through one session: submit in arrival order, drain."""
    session = session if session is not None else ServeSession(
        capacity=capacity)
    futures = []
    t0 = time.perf_counter()
    for job in workload.jobs:
        if job.kind == "predict":
            futures.append(session.submit_predict(job.model, job.x))
        else:
            futures.append(session.submit_attack(job.make_attack(),
                                                 job.x, job.y))
    results = [f.result() for f in futures]
    elapsed = time.perf_counter() - t0
    out = {"results": results, "seconds": elapsed, "rows": workload.rows,
           "jobs": len(workload.jobs)}
    out.update(session.stats)
    return out


def verify_parity(workload: Workload, capacity: int = 64) -> Dict[str, Any]:
    """Replay both ways, assert bit-identical per-job results.

    The serving layer's whole contract in one call: coalescing and
    shared caches may change wall-time only.  Returns both replays'
    timings plus the aggregate throughput ratio
    (``rows / seconds`` serve over sequential).
    """
    seq = replay_sequential(workload)
    srv = replay_serve(workload, capacity=capacity)
    for i, (a, b) in enumerate(zip(seq["results"], srv["results"])):
        if not (a.shape == b.shape and a.dtype == b.dtype
                and np.array_equal(a, b)):
            raise AssertionError(
                f"job {i} ({workload.jobs[i].kind}) diverged between "
                "sequential and served replay")
    return {
        "jobs": len(workload.jobs),
        "rows": workload.rows,
        "sequential_s": seq["seconds"],
        "serve_s": srv["seconds"],
        "throughput_ratio": seq["seconds"] / srv["seconds"],
        "dispatches": srv["dispatches"],
        "coalesced_dispatches": srv["coalesced_dispatches"],
        "plan_cache": srv["plan_cache"],
    }
