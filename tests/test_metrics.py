"""Metrics: §5.1 success definitions, instability, image quality."""

import numpy as np
import pytest

from repro.metrics import (InstabilityReport, batch_dssim, dssim,
                           evaluate_attack, instability_report,
                           natural_confidence_delta, prediction_agreement,
                           psnr, ssim, targeted_reach)


def _onehot_logits(labels, n_classes, scale=10.0):
    z = np.zeros((len(labels), n_classes))
    z[np.arange(len(labels)), labels] = scale
    return z


class TestSuccessMetrics:
    def test_top1_definition(self, fixed_logit_model):
        y = np.array([0, 0, 0, 0])
        # orig predictions: correct, correct, wrong, wrong
        orig = fixed_logit_model(_onehot_logits([0, 0, 1, 1], 3))
        # adapted:          wrong,  correct, wrong, correct
        adapted = fixed_logit_model(_onehot_logits([2, 0, 2, 0], 3))
        x = np.zeros((4, 1, 2, 2))
        rep = evaluate_attack(orig, adapted, x, y)
        assert rep.top1_success_rate == 0.25       # only sample 0
        assert rep.attack_only_success_rate == 0.5  # samples 0, 2
        assert rep.quadrant_both_correct == 0.25
        assert rep.quadrant_both_incorrect == 0.25
        assert rep.quadrant_orig_incorrect_adapted_correct == 0.25
        assert rep.n == 4

    def test_quadrants_sum_to_one(self, fixed_logit_model, rng):
        y = rng.integers(0, 4, size=10)
        orig = fixed_logit_model(rng.normal(size=(10, 4)))
        adapted = fixed_logit_model(rng.normal(size=(10, 4)))
        rep = evaluate_attack(orig, adapted, np.zeros((10, 1, 2, 2)), y)
        total = (rep.quadrant_both_correct
                 + rep.quadrant_orig_correct_adapted_incorrect
                 + rep.quadrant_both_incorrect
                 + rep.quadrant_orig_incorrect_adapted_correct)
        assert np.isclose(total, 1.0)

    def test_topk_requires_exclusion_from_orig_topk(self, fixed_logit_model):
        y = np.array([0])
        # orig: class 0 best, then 1, 2, 3...; adapted predicts class 1
        orig_logits = np.array([[9.0, 8.0, 7.0, 6.0, 5.0, 4.0]])
        adapted_logits = _onehot_logits([1], 6)
        rep = evaluate_attack(fixed_logit_model(orig_logits),
                              fixed_logit_model(adapted_logits),
                              np.zeros((1, 1, 2, 2)), y, topk=5)
        assert rep.top1_success_rate == 1.0
        assert rep.top5_success_rate == 0.0       # class 1 is in orig top-5
        rep2 = evaluate_attack(fixed_logit_model(orig_logits),
                               fixed_logit_model(_onehot_logits([5], 6)),
                               np.zeros((1, 1, 2, 2)), y, topk=5)
        assert rep2.top5_success_rate == 1.0      # class 5 is orig's 6th

    def test_confidence_delta_sign(self, fixed_logit_model):
        y = np.array([0])
        orig = fixed_logit_model(np.array([[5.0, 0.0]]))    # confident correct
        adapted = fixed_logit_model(np.array([[0.0, 5.0]]))  # confident wrong
        rep = evaluate_attack(orig, adapted, np.zeros((1, 1, 2, 2)), y)
        assert rep.confidence_delta > 0.9

    def test_evasion_cost(self, fixed_logit_model):
        y = np.array([0, 0])
        orig = fixed_logit_model(_onehot_logits([1, 0], 3))
        adapted = fixed_logit_model(_onehot_logits([1, 1], 3))
        rep = evaluate_attack(orig, adapted, np.zeros((2, 1, 2, 2)), y)
        # attack-only 100%, evasive 50% -> cost 50%
        assert np.isclose(rep.evasion_cost, 0.5)

    def test_natural_confidence_delta(self, fixed_logit_model):
        y = np.array([0])
        a = fixed_logit_model(np.array([[2.0, 0.0]]))
        b = fixed_logit_model(np.array([[1.0, 0.0]]))
        d = natural_confidence_delta(a, b, np.zeros((1, 1, 2, 2)), y)
        assert d > 0

    def test_targeted_reach(self, fixed_logit_model):
        y = np.array([0, 0, 1])
        adapted = fixed_logit_model(_onehot_logits([2, 0, 2], 3))
        reach = targeted_reach(adapted, np.zeros((3, 1, 2, 2)), y, target=2)
        assert np.isclose(reach, 2 / 3)


class TestInstability:
    def test_report_counts(self, fixed_logit_model):
        y = np.array([0, 0, 0, 0, 1])
        orig = fixed_logit_model(_onehot_logits([0, 0, 1, 1, 1], 3))
        adapted = fixed_logit_model(_onehot_logits([0, 1, 0, 1, 0], 3))
        rep = instability_report(orig, adapted, np.zeros((5, 1, 2, 2)), y)
        assert rep.original_accuracy == 0.6
        assert rep.adapted_accuracy == 0.4
        assert rep.orig_correct_adapted_incorrect == 2   # samples 1 and 4
        assert rep.orig_incorrect_adapted_correct == 1   # sample 2
        assert rep.deviation_instability == 3 / 5
        assert rep.instability == 3 / 5   # sample 3 agrees (both wrong same)

    def test_both_wrong_differently_counts_in_total(self, fixed_logit_model):
        y = np.array([0])
        orig = fixed_logit_model(_onehot_logits([1], 3))
        adapted = fixed_logit_model(_onehot_logits([2], 3))
        rep = instability_report(orig, adapted, np.zeros((1, 1, 2, 2)), y)
        assert rep.deviation_instability == 0.0
        assert rep.instability == 1.0

    def test_agreement(self, fixed_logit_model):
        a = fixed_logit_model(_onehot_logits([0, 1, 2], 3))
        b = fixed_logit_model(_onehot_logits([0, 1, 0], 3))
        assert np.isclose(prediction_agreement(a, b, np.zeros((3, 1, 2, 2))),
                          2 / 3)


class TestImageQuality:
    def test_ssim_identical_is_one(self, rng):
        img = rng.random((3, 16, 16))
        assert np.isclose(ssim(img, img), 1.0)
        assert np.isclose(dssim(img, img), 0.0)

    def test_ssim_decreases_with_noise(self, rng):
        img = rng.random((16, 16))
        s_small = ssim(img, np.clip(img + rng.normal(0, 0.01, img.shape), 0, 1))
        s_big = ssim(img, np.clip(img + rng.normal(0, 0.3, img.shape), 0, 1))
        assert s_big < s_small <= 1.0

    def test_ssim_symmetric(self, rng):
        a, b = rng.random((8, 8)), rng.random((8, 8))
        assert np.isclose(ssim(a, b), ssim(b, a))

    def test_ssim_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_batch_dssim(self, rng):
        a = rng.random((3, 1, 8, 8))
        d = batch_dssim(a, a)
        assert d.shape == (3,)
        assert np.allclose(d, 0.0)

    def test_psnr_infinite_for_identical(self, rng):
        img = rng.random((4, 4))
        assert psnr(img, img) == float("inf")

    def test_psnr_ordering(self, rng):
        img = rng.random((8, 8))
        near = img + 0.001
        far = img + 0.2
        assert psnr(img, near) > psnr(img, far)

    def test_small_perturbation_small_dssim(self, rng):
        """An eps-bounded adversarial-style perturbation keeps DSSIM tiny."""
        img = rng.random((3, 16, 16))
        pert = np.clip(img + rng.choice([-1, 1], img.shape) * (8 / 255), 0, 1)
        assert dssim(img, pert) < 0.05
