"""Shared attack machinery: L-inf projection, input gradients, scheduling.

All attacks operate on pixel arrays in [0, 1] (NCHW) and return perturbed
arrays of the same shape.  The attack budget follows the paper: L-inf
bound ``eps`` (default 8/255), per-step size ``alpha`` (default 1/255),
``steps`` iterations (default 20), natural-sample initialization.

Hot-loop economics (the §5.2 "attack speed" axis): a naive keep-best
loop pays the gradient pass *and* a separate success-check forward per
step — 4 model passes/step for DIVA, 2 for PGD.  ``Attack.generate``
instead runs the active-slot scheduler (:mod:`repro.attacks.engine`):
each pass is one gradient batch whose logits double as the shifted
keep-best success check (iterate *t* is checked by the pass that starts
iteration *t + 1*), so DIVA pays exactly 2 model passes per step and
PGD exactly 1 — the trailing success forward of older loops is gone
because a sample that stops stepping at its first success already *is*
the returned iterate.  Samples that succeed free their slot, which is
refilled with pending samples from later batches (cross-batch work
stealing), so the gradient batch stays full until the global tail.
``Attack.generate_sweep`` tiles the batch across an (eps, c, ...)
variant grid and feeds the same scheduler, sharing one compiled program
pair and per-variant keep-best state across the whole grid.  Attacks
that declare a loop spec (:meth:`Attack._loop_spec`) additionally ride
the recorded whole-loop path (:mod:`repro.attacks.loop`): every step of
the scheduled loop replays inside one masked program, bit-validated
against the step-at-a-time engine at plan-build time.  All scheduling
is value-neutral: per-sample trajectories are bit-identical to the
classic one-batch-at-a-time loop.

Subclasses compile their frozen models into replayable programs
(:mod:`repro.nn.graph`) — DIVA-family attacks fuse the (original,
adapted) pair into a :class:`~repro.attacks.engine.PairedExecutor` with
shared scratch and one combined softmax-seeded backward — and fall back
to the eager tape whenever compilation is unsupported.  Compiled
programs live in the attack's :class:`~repro.serve.PlanCache`
(private by default; a :class:`~repro.serve.ServeSession` rebinds it to
a shared budgeted store, and :meth:`Attack.serve_signature` tells the
serving scheduler which instances' jobs may merge).  Attacks with
full-batch gradient state (momentum) keep the legacy per-batch loop
(``shrink_done = False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import rowrep
from ..nn.module import Module
from ..nn.tensor import Tensor
from .engine import SCHEDULER_KEYS, _per_item, run_scheduled

PIXEL_MIN = 0.0
PIXEL_MAX = 1.0
DEFAULT_EPS = 8.0 / 255.0
DEFAULT_ALPHA = 1.0 / 255.0
DEFAULT_STEPS = 20

#: rows of the incoming batch used as the compile/validation example;
#: compiled programs replay any batch size, so tracing a small slice
#: keeps first-call latency flat in the batch size
_COMPILE_EXAMPLE_ROWS = 8


def project_linf(x_adv: np.ndarray, x_orig: np.ndarray, eps: float) -> np.ndarray:
    """Project onto the L-inf ball of radius ``eps`` around ``x_orig``,
    then clamp to the valid pixel range."""
    out = np.clip(x_adv, x_orig - eps, x_orig + eps)
    return np.clip(out, PIXEL_MIN, PIXEL_MAX)


def linf_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-sample L-inf distance of (N, ...) batches."""
    return np.abs(a - b).reshape(len(a), -1).max(axis=1)


def input_gradient(loss_builder: Callable[[Tensor], Tensor],
                   x: np.ndarray) -> np.ndarray:
    """Gradient of a scalar loss w.r.t. the input pixels.

    ``loss_builder`` maps the input tensor to a scalar loss; per-sample
    losses must be summed (samples are independent, so the summed
    gradient equals stacked per-sample gradients).
    """
    xt = Tensor(x, requires_grad=True)
    loss = loss_builder(xt)
    loss.backward()
    return xt.grad.copy()


def softmax_np(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis (plain numpy)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_vjp(probs: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vector-Jacobian product of softmax: d(v . p)/d(logits).

    Given ``p = softmax(z)`` and an upstream gradient ``v`` w.r.t. the
    probabilities, returns the gradient w.r.t. the logits:
    ``p * (v - sum(p * v))`` per row.
    """
    return probs * (v - (probs * v).sum(axis=-1, keepdims=True))


def compile_model(model, example: np.ndarray):
    """Best-effort compiled forward for a frozen model; None on fallback.

    ``attack.plan.build`` is the chaos harness's plan-build injection
    point (a no-op import + call unless an injector is installed): an
    error fault here is a failed compile, surfaced to the serving layer
    as a dispatch failure it must degrade around.
    """
    from ..serve import faults
    faults.fire("attack.plan.build")
    from ..nn.graph import compile_forward_or_none
    return compile_forward_or_none(model, example)


@dataclass
class AttackTrace:
    """Optional per-step snapshots for step-sweep figures (Fig 6d).

    ``snapshots[t]`` holds the adversarial batch after ``t + 1`` steps.
    """

    snapshots: List[np.ndarray] = field(default_factory=list)

    def record(self, x_adv: np.ndarray) -> None:
        self.snapshots.append(x_adv.copy())


class Attack:
    """Base class: iterate sign-gradient steps under an L-inf budget.

    With ``keep_best`` (default), each sample's *first iterate satisfying
    the attack's own success criterion* is kept and returned even if later
    steps overshoot — standard strong-attack practice, and consistent with
    the paper's monotone success-vs-steps curves (Fig 6d).  Attacks define
    success via :meth:`is_success`; the base class has no criterion, so it
    falls back to returning the final iterate.

    Subclasses that can derive success from the logits of their own
    gradient pass implement :meth:`gradient_with_logits` /
    :meth:`success_from_logits` / :meth:`success_logits`; the loop then
    skips the per-step success forwards entirely.  Subclasses that only
    implement :meth:`gradient` / :meth:`is_success` keep the classic
    (slower) behaviour unchanged.
    """

    #: drop already-successful samples from subsequent gradient batches;
    #: attacks with full-batch gradient state (momentum) turn this off,
    #: which also opts them out of the slot scheduler and sweeps.
    shrink_done = True

    #: attack-specific scalar parameters that :meth:`generate_sweep`
    #: variants may override per item (e.g. DIVA's ``c``)
    sweep_params: frozenset = frozenset()

    #: gradient passes the recorded whole-loop replays between deadline
    #: polls (:mod:`repro.attacks.loop`).  The default of 1 matches the
    #: step-at-a-time engine's poll cadence exactly (chaos parity);
    #: larger chunks trade poll granularity for a little dispatch
    #: overhead on deadline-bounded jobs.
    loop_chunk = 1

    def __init__(self, eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        if eps <= 0 or alpha <= 0 or steps < 1:
            raise ValueError("eps/alpha must be positive and steps >= 1")
        self.eps = float(eps)
        self.alpha = float(alpha)
        self.steps = int(steps)
        self.random_start = bool(random_start)
        self.keep_best = bool(keep_best)
        self.seed = seed
        #: set False to force the eager-tape path (e.g. for counting
        #: model calls, or when model weights mutate mid-generate).
        self.use_compiled = True
        #: set False to force step-at-a-time scheduling even when a
        #: recorded whole-loop plan exists (bench arms, bisection);
        #: results are bit-identical either way.
        self.use_loop = True
        #: compiled-program store; private by default, rebound to a
        #: shared budgeted cache when the attack is served through a
        #: :class:`repro.serve.ServeSession`
        from ..serve.cache import PlanCache
        self.plan_cache = PlanCache()

    # ------------------------------------------------------------------ #
    # subclass surface
    # ------------------------------------------------------------------ #
    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-batch gradient of the attack objective."""
        raise NotImplementedError  # pragma: no cover - abstract

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray,
                             variant: Optional[Dict[str, np.ndarray]] = None,
                             ) -> Tuple[np.ndarray, Any]:
        """Gradient plus whatever logits the pass produced (or None).

        The second element is an attack-defined payload consumed only by
        :meth:`success_from_logits`; None means "no logits available,
        fall back to :meth:`is_success`".  ``variant`` carries per-row
        parameter vectors for sweep runs (keys declared in
        :attr:`sweep_params`); None means "use the attack's own
        scalars".
        """
        return self.gradient(x_adv, y), None

    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        """Forward-only logits payload for a success check (or None)."""
        return None

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """Success mask derived from a logits payload, or None."""
        return None

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> Optional[np.ndarray]:
        """Per-sample success mask under this attack's own objective, or
        None when the attack defines no early-success criterion."""
        return None

    def _loop_spec(self, x: np.ndarray):
        """Recipe for whole-loop recording, or None (engine path).

        Subclasses whose gradient is a pure function of the compiled
        programs' logits return a :class:`repro.attacks.loop.LoopSpec`
        (the programs plus seed/aux adapters); the base class — and any
        subclass with stateful gradients, overridden step rules or
        untraceable models — returns None, keeping the step-at-a-time
        engine.  Implementations must refuse (return None) whenever
        ``gradient_with_logits`` or ``_step`` is overridden relative to
        the class that defines the spec, so a custom subclass can never
        be silently driven by the wrong recipe.
        """
        return None

    def serve_signature(self) -> Optional[Tuple]:
        """Coalescing identity for the serving layer, or None.

        Two attack instances whose signatures are equal may have their
        jobs merged into one scheduled pass by
        :class:`repro.serve.Scheduler`: the signature must therefore
        capture *everything* the stepping loop reads that is not already
        per-item (the model objects, the class, ``steps``; ``eps`` /
        ``alpha`` / ``keep_best`` and declared :attr:`sweep_params` are
        per-item vectors and never belong here).  The base class returns
        None — "never merge across instances" — which is always safe.
        """
        return None

    # ------------------------------------------------------------------ #
    # compiled-executor plumbing
    # ------------------------------------------------------------------ #
    @property
    def _exec_cache(self) -> Dict[Any, Tuple[Any, Any]]:
        """Introspection view of :attr:`plan_cache`, ``{key: (owner,
        plan)}`` with single owners unwrapped — the shape the historic
        per-attack dict had (kept for tests and debugging)."""
        return {key: (e.owners[0] if len(e.owners) == 1 else e.owners,
                      e.plan)
                for key, e in self.plan_cache.items(scope=self)}

    def _compiled(self, model, x: np.ndarray):
        """Cached compiled executor for ``model`` (None = eager fallback).

        The cache entry *holds* the model it was compiled from: a bare
        ``id(model)`` key could collide after garbage collection hands
        the address to a different model (e.g. when ``self.model`` is
        rebound between ``generate`` calls), silently replaying a stale
        program.  Pinning the model makes the id stable for the entry's
        lifetime, and the identity check guards the rebind case (both
        now enforced by :class:`repro.serve.PlanCache`).
        """
        if not self.use_compiled:
            return None
        # trace/validate on a small slice: replays accept any batch size,
        # and compile-time validation cost scales with the example batch.
        # dtype is part of the key: replays silently cast mismatched
        # inputs, so a float64 tenant hitting a float32 plan in a shared
        # cache would silently drop precision
        return self.plan_cache.get(
            (id(model), x.shape[1:], x.dtype.str, rowrep.mode_key()),
            (model,),
            lambda: compile_model(model, x[:_COMPILE_EXAMPLE_ROWS]),
            scope=self)

    def _paired_executor(self, models: Tuple, x: np.ndarray):
        """Cached :class:`~repro.attacks.engine.PairedExecutor` over
        ``models`` (None = eager fallback), with the same held-reference
        keying discipline as :meth:`_compiled`."""
        if not self.use_compiled:
            return None

        def _build():
            from ..serve import faults
            faults.fire("attack.plan.build")
            from .engine import PairedExecutor
            return PairedExecutor.compile(models, x[:_COMPILE_EXAMPLE_ROWS])

        return self.plan_cache.get(
            (tuple(id(m) for m in models), x.shape[1:], x.dtype.str,
             rowrep.mode_key()),
            tuple(models), _build, scope=self)

    def _plan_owners(self) -> Optional[List]:
        """The models whose compiled plans this attack replays, used to
        scope cache refreshes in a shared store.  The base class reads
        the conventional attribute names; an attack holding its models
        elsewhere must override (returning None refreshes everything —
        always safe)."""
        owners = [m for name in ("model", "original", "adapted")
                  for m in [getattr(self, name, None)] if m is not None]
        return owners or None

    def _refresh_compiled(self) -> None:
        """Re-fold constants on the cached plans of *this attack's
        models* — including plans an equal-signature sibling compiled
        (shared-cache keys are model/shape-based, so a hit may be on a
        plan some other instance built after the weights last moved).
        Owner-scoped: other tenants' plans in a shared session store
        are untouched."""
        self.plan_cache.refresh(owners=self._plan_owners())

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def _init(self, x: np.ndarray) -> np.ndarray:
        """Starting point: natural sample, or uniform noise in the ball.

        The paper initializes from the natural sample — "random start is
        less effective in a single run" (§5.1).
        """
        return self._init_variant(x, self.eps)

    def _success_mask(self, aux: Any, x_sub: np.ndarray,
                      y_sub: np.ndarray) -> Optional[np.ndarray]:
        if aux is None:
            # gradient pass produced no logits (e.g. query-based
            # estimators): try a forward-only payload before falling all
            # the way back to the pixel-level check
            aux = self.success_logits(x_sub, y_sub)
        if aux is not None:
            mask = self.success_from_logits(aux, y_sub)
            if mask is not None:
                return np.asarray(mask)
        mask = self.is_success(x_sub, y_sub)
        return None if mask is None else np.asarray(mask)

    def _step(self, adv_rows: np.ndarray, x_rows: np.ndarray,
              g_rows: np.ndarray, eps=None, alpha=None) -> np.ndarray:
        """One sign step.  ``eps``/``alpha`` may be per-row (n,) vectors
        (sweep variants); scalars and vectors of equal value produce
        bit-identical results."""
        eps = self.eps if eps is None else eps
        alpha = self.alpha if alpha is None else alpha
        if isinstance(eps, np.ndarray) and eps.ndim == 1:
            eps = eps.reshape(-1, *([1] * (x_rows.ndim - 1)))
        if isinstance(alpha, np.ndarray) and alpha.ndim == 1:
            alpha = alpha.reshape(-1, *([1] * (x_rows.ndim - 1)))
        stepped = adv_rows + alpha * np.sign(g_rows)
        return project_linf(stepped, x_rows, eps).astype(x_rows.dtype)

    def _run_plain(self, xb: np.ndarray, yb: np.ndarray, adv: np.ndarray,
                   snaps: Optional[List[np.ndarray]],
                   deadline=None, row0: int = 0) -> np.ndarray:
        """Fixed-step loop (full-batch state attacks with keep_best off).

        Deadline-expired rows are *frozen*, not dropped: the batch keeps
        its composition so full-batch gradient state (momentum velocity,
        NES RNG draws) is untouched for every other row — value
        neutrality is the serving layer's core contract.  A frozen row's
        held iterate is its best-so-far result.
        """
        stopped = (np.zeros(len(xb), dtype=bool)
                   if deadline is not None else None)
        held: Optional[np.ndarray] = None
        for t in range(self.steps):
            if stopped is not None and not stopped.all():
                live = np.flatnonzero(~stopped)
                exp = np.asarray(deadline.poll(row0 + live), dtype=bool)
                if exp.any():
                    newly = live[exp]
                    if held is None:
                        held = np.empty_like(adv)
                    held[newly] = adv[newly]
                    stopped[newly] = True
                    deadline.expire(row0 + newly, t)
            if stopped is not None and stopped.all() and snaps is None:
                break
            g, _ = self.gradient_with_logits(adv, yb)
            adv = self._step(adv, xb, g)
            if snaps is not None:
                snaps.append(adv)
        if held is not None:
            shape = (-1,) + (1,) * (adv.ndim - 1)
            return np.where(stopped.reshape(shape), held, adv)
        return adv

    def _run_keep_best(self, xb: np.ndarray, yb: np.ndarray, adv: np.ndarray,
                       snaps: Optional[List[np.ndarray]],
                       deadline=None, row0: int = 0) -> np.ndarray:
        """Keep-best loop with shifted success checks.

        Iterate ``adv_t`` is checked with the logits of the gradient pass
        that starts iteration ``t`` (the pass needed to produce
        ``adv_{t+1}`` anyway); the final iterate is returned *unchecked*,
        because a success there cannot change the returned bytes — the
        row would retire holding exactly that iterate.  This keeps the
        done-mask semantics (and the pass count: exactly ``steps`` per
        row) identical to :func:`~repro.attacks.engine.
        run_scheduled_steps`; historically this loop paid one trailing
        success forward, which made single-step keep-best runs
        (FGSM-as-PGD(steps=1)) cost two passes here and one there.  The
        sequence of checked iterates — and every produced sample — is
        identical to checking right after each step.

        Deadline-expired rows reuse the held/done machinery: they freeze
        at their current iterate (best-so-far) without leaving the
        batch, so full-batch gradient state stays untouched for the
        surviving rows.  Rows already done (a genuine success) are never
        polled — completion always wins over expiry.
        """
        held = adv.copy()
        done = np.zeros(len(xb), dtype=bool)

        def merged() -> np.ndarray:
            return np.where(done[:, None, None, None], held, adv)

        def check(active: np.ndarray, aux: Any) -> Optional[np.ndarray]:
            """Update held/done for adv[active]; returns the mask (or None)."""
            mask = self._success_mask(aux, adv[active], yb[active])
            if mask is not None:
                # only first successes count: rows already done keep the
                # iterate that first satisfied the criterion
                newly = active[mask & ~done[active]]
                held[newly] = adv[newly]
                done[newly] = True
            return mask

        for t in range(self.steps):
            if deadline is not None:
                live = np.flatnonzero(~done)
                if live.size:
                    exp = np.asarray(deadline.poll(row0 + live), dtype=bool)
                    if exp.any():
                        newly = live[exp]
                        held[newly] = adv[newly]
                        done[newly] = True
                        deadline.expire(row0 + newly, t)
            active = np.flatnonzero(~done) if self.shrink_done else \
                np.arange(len(xb))
            if active.size == 0:
                if snaps is not None:
                    frozen = merged()
                    while len(snaps) < self.steps:
                        snaps.append(frozen)
                return merged()
            g, aux = self.gradient_with_logits(adv[active], yb[active])
            if t > 0:
                mask = check(active, aux)
                if snaps is not None:
                    snaps.append(merged())
                if mask is not None and self.shrink_done:
                    active, g = active[~mask], g[~mask]
            if active.size:
                adv[active] = self._step(adv[active], xb[active], g)
        if snaps is not None:
            snaps.append(merged())
        return merged()

    def generate(self, x: np.ndarray, y: np.ndarray,
                 trace: Optional[AttackTrace] = None,
                 batch_size: int = 64,
                 deadline=None) -> np.ndarray:
        """Craft adversarial examples for the whole batch.

        Ascends the subclass objective with sign steps, projecting back
        into the eps-ball each iteration (Eq. 3 of the paper).  Attacks
        without full-batch gradient state run on the active-slot
        scheduler (:mod:`repro.attacks.engine`): ``batch_size`` is the
        slot capacity, and slots freed by successful samples are
        refilled from later batches.  Iterates are bit-identical to the
        per-batch loop either way.

        ``deadline`` (a :class:`~repro.serve.resilience.DeadlineToken`
        with one entry per row of ``x``) retires expiring rows between
        steps with their best-so-far iterate — the serving layer's
        graceful-degradation path.
        """
        y = np.asarray(y)
        self._refresh_compiled()
        if self.shrink_done:
            n = len(x)
            eps = np.full(n, self.eps, dtype=x.dtype)
            alpha = np.full(n, self.alpha, dtype=x.dtype)
            check = np.full(n, self.keep_best, dtype=bool)
            snaps = (np.empty((self.steps,) + x.shape, dtype=x.dtype)
                     if trace is not None else None)
            adv = run_scheduled(self, x, y, self._init(x), eps, alpha, check,
                                None, capacity=batch_size, snaps=snaps,
                                deadline=deadline)
            if trace is not None:
                for t in range(self.steps):
                    trace.record(snaps[t])
            return adv
        # legacy per-batch loop: full-batch gradient state (momentum)
        # forbids dropping or reordering rows mid-flight
        outs = []
        step_snaps: List[List[np.ndarray]] = [[] for _ in range(self.steps)]
        for start in range(0, len(x), batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            adv = self._init(xb)
            snaps_b: Optional[List[np.ndarray]] = [] if trace is not None else None
            if self.keep_best:
                final = self._run_keep_best(xb, yb, adv, snaps_b,
                                            deadline=deadline, row0=start)
            else:
                final = self._run_plain(xb, yb, adv, snaps_b,
                                        deadline=deadline, row0=start)
            outs.append(final)
            if trace is not None:
                for t in range(self.steps):
                    step_snaps[t].append(snaps_b[t])
        if trace is not None:
            for t in range(self.steps):
                trace.record(np.concatenate(step_snaps[t], axis=0))
        return np.concatenate(outs, axis=0)

    def generate_sweep(self, x: np.ndarray, y: np.ndarray,
                       variants: Sequence[Dict[str, Any]],
                       batch_size: int = 64) -> List[np.ndarray]:
        """Run the attack once per variant over one scheduled pass.

        Each variant is a dict overriding ``eps`` / ``alpha`` /
        ``keep_best`` and any attack parameter named in
        :attr:`sweep_params` (e.g. ``{"eps": 16/255, "c": 5.0}``); empty
        dicts mean "the attack's own settings".  The (variant, sample)
        grid is tiled into one work queue sharing the compiled programs,
        so a whole (eps, c) sweep costs one scheduled pass instead of
        ``len(variants)`` sequential ``generate`` calls.  Returns one
        adversarial batch per variant, each bit-identical to the
        sequential ``generate`` run with that variant's parameters.
        """
        y = np.asarray(y)
        allowed = SCHEDULER_KEYS | self.sweep_params
        for v in variants:
            unknown = set(v) - allowed
            if unknown:
                raise ValueError(f"unsupported sweep parameter(s) {unknown}; "
                                 f"this attack accepts {sorted(allowed)}")
        if not self.shrink_done:
            # full-batch gradient state cannot be tiled; fall back to
            # sequential per-variant runs on parameter clones
            import copy as _copy
            outs = []
            for v in variants:
                clone = _copy.copy(self)
                for key, val in v.items():
                    setattr(clone, key, val)
                outs.append(clone.generate(x, y, batch_size=batch_size))
            return outs
        self._refresh_compiled()
        n = len(x)
        n_var = len(variants)
        xt = np.concatenate([x] * n_var, axis=0)
        yt = np.tile(y, n_var)
        eps = np.concatenate([
            _per_item(v.get("eps", self.eps), n, x.dtype) for v in variants])
        alpha = np.concatenate([
            _per_item(v.get("alpha", self.alpha), n, x.dtype) for v in variants])
        check = np.concatenate([
            np.full(n, bool(v.get("keep_best", self.keep_best)))
            for v in variants])
        params = None
        extra = self.sweep_params & {k for v in variants for k in v}
        if extra:
            params = {key: np.concatenate([
                _per_item(v.get(key, getattr(self, key)), n, np.float64)
                for v in variants]) for key in extra}
        adv0 = np.concatenate([
            self._init_variant(x, v.get("eps", self.eps)) for v in variants])
        adv = run_scheduled(self, xt, yt, adv0, eps, alpha, check, params,
                            capacity=batch_size)
        return [adv[i * n:(i + 1) * n] for i in range(n_var)]

    def _init_variant(self, x: np.ndarray, eps: float) -> np.ndarray:
        """Per-variant :meth:`_init`: same rng stream per variant as a
        sequential run with that eps would draw."""
        if not self.random_start:
            return x.copy()
        rng = np.random.default_rng(self.seed)
        noise = rng.uniform(-eps, eps, size=x.shape).astype(x.dtype)
        return project_linf(x + noise, x, eps)
