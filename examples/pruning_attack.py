"""DIVA against pruning adaptation (§5.6).

Builds the paper's two pruned model families — (1) magnitude-pruned +
finetuned, (2) pruned then quantized with sparsity preserved through QAT
— and shows DIVA's evasive success on both, plus the §5.6 observation
that pruning's much larger natural instability lets even PGD diverge the
models more often than in the quantization setting.

Run:  python examples/pruning_attack.py
"""

from repro.attacks import DIVA, PGD
from repro.data import SynthImageNetConfig, select_attack_set, standard_splits
from repro.metrics import evaluate_attack, instability_report
from repro.models import build_model
from repro.nn import set_default_dtype
from repro.pruning import model_sparsity, prune_finetune, prune_then_quantize
from repro.training import fit


def main() -> None:
    set_default_dtype("float32")

    print("== original model ==")
    cfg = SynthImageNetConfig(num_classes=20, image_size=16,
                              noise=0.40, jitter=0.20)
    train, val, _ = standard_splits(cfg, train_per_class=120,
                                    val_per_class=40, surrogate_per_class=10)
    original = build_model("resnet", num_classes=20, width=8, seed=0)
    fit(original, train.x, train.y, epochs=8, batch_size=64, lr=0.02, seed=1)

    print("== adaptation 1: magnitude pruning to 2/3 sparsity ==")
    pruned = prune_finetune(original, train.x, train.y, sparsity=0.67,
                            epochs=2, batch_size=64,
                            log_fn=lambda s: print("  " + s))
    print(f"  realized sparsity: {model_sparsity(pruned):.1%} "
          "(paper: models compressed to 1/3 of size)")

    print("== adaptation 2: pruning + quantization ==")
    pruned_quant = prune_then_quantize(pruned, train.x, train.y,
                                       weight_bits=4, act_bits=8,
                                       per_channel=False, qat_epochs=1)

    eps, alpha, steps = 32 / 255, 4 / 255, 20
    for name, adapted in [("pruned", pruned),
                          ("pruned+quantized", pruned_quant)]:
        rep = instability_report(original, adapted, val.x, val.y)
        print(f"== attacks vs {name} model "
              f"(acc {rep.adapted_accuracy:.1%}, "
              f"instability {rep.deviation_instability:.1%}) ==")
        atk_set = select_attack_set(val, [original, adapted], per_class=6)
        x_pgd = PGD(adapted, eps=eps, alpha=alpha, steps=steps).generate(
            atk_set.x, atk_set.y)
        x_diva = DIVA(original, adapted, c=1.0, eps=eps, alpha=alpha,
                      steps=steps).generate(atk_set.x, atk_set.y)
        for attack_name, x_adv in [("PGD ", x_pgd), ("DIVA", x_diva)]:
            r = evaluate_attack(original, adapted, x_adv, atk_set.y, topk=2)
            print(f"  {attack_name}: evasive={r.top1_success_rate:6.1%}  "
                  f"attack-only={r.attack_only_success_rate:6.1%}  "
                  f"conf-delta={r.confidence_delta:5.1%}")


if __name__ == "__main__":
    main()
