"""Model persistence (npz state dicts)."""

import numpy as np

from repro.models import build_model
from repro.nn import Tensor, load_state, save_state


def test_round_trip(tmp_path, rng):
    m1 = build_model("resnet", num_classes=4, width=4, seed=0)
    m2 = build_model("resnet", num_classes=4, width=4, seed=9)
    path = str(tmp_path / "model.npz")
    save_state(m1, path)
    load_state(m2, path)
    x = Tensor(rng.normal(size=(2, 3, 8, 8)))
    m1.eval(); m2.eval()
    assert np.allclose(m1(x).data, m2(x).data)


def test_round_trip_includes_buffers(tmp_path, rng):
    from repro.training import fit
    from repro.data import SynthImageNetConfig, generate_synth_imagenet
    ds = generate_synth_imagenet(8, SynthImageNetConfig(num_classes=3,
                                                        image_size=8))
    m1 = build_model("resnet", num_classes=3, width=4, seed=0)
    fit(m1, ds.x, ds.y, epochs=1, batch_size=8, lr=0.01)
    path = str(tmp_path / "trained.npz")
    save_state(m1, path)
    m2 = build_model("resnet", num_classes=3, width=4, seed=5)
    load_state(m2, path)
    # BN running stats must survive the round trip for eval parity
    assert np.allclose(m1.stem_bn.running_mean, m2.stem_bn.running_mean)
    x = Tensor(ds.x[:4])
    m1.eval(); m2.eval()
    assert np.allclose(m1(x).data, m2(x).data)


def test_creates_directories(tmp_path):
    m = build_model("lenet", num_classes=3, image_size=12, seed=0)
    path = str(tmp_path / "deep" / "dir" / "m.npz")
    save_state(m, path)
    load_state(m, path)
