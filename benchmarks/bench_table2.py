"""Table 2 — evasion cost (attack-only success, PGD vs DIVA).

Paper: quantization PGD 98.4-98.7% vs DIVA 95.1-97.0% (cost 1.7-3.6%);
pruning both ~100%; pruning+quantization within 0.2-0.4%.
"""

from .conftest import run_once


def test_table2(benchmark, cfg, pipeline):
    from repro.experiments import exp_table2
    res = run_once(benchmark, lambda: exp_table2.run(cfg, pipeline=pipeline))
    for arch, r in res["quantized"].items():
        # §5.3: tuning c toward attack erases most of the evasion cost
        assert r["diva_c10_attack_only"] >= r["pgd_attack_only"] - 0.12, arch
    for arch, r in res["pruned"].items():
        assert r["diva_attack_only"] >= 0.5, arch
