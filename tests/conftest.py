"""Shared fixtures: dtype isolation, tiny datasets, tiny trained models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import get_default_dtype, set_default_dtype
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    """Keep the global dtype policy from leaking between tests."""
    before = get_default_dtype()
    yield
    set_default_dtype(before)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f() w.r.t. array x (mutated
    in place around each probe)."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        x[i] += eps
        fp = f()
        x[i] -= 2 * eps
        fm = f()
        x[i] += eps
        g[i] = (fp - fm) / (2 * eps)
    return g


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small synthetic image dataset shared across tests (6 classes)."""
    from repro.data import SynthImageNetConfig, generate_synth_imagenet
    cfg = SynthImageNetConfig(num_classes=6, image_size=12, noise=0.25,
                              jitter=0.15, seed=3)
    train = generate_synth_imagenet(40, cfg, split_seed=1)
    val = generate_synth_imagenet(15, cfg, split_seed=2)
    return train, val


@pytest.fixture(scope="session")
def tiny_model(tiny_dataset):
    """A small trained ResNet used by attack/quantization tests."""
    from repro.models import build_model
    from repro.training import fit
    train, val = tiny_dataset
    model = build_model("resnet", num_classes=6, width=4, seed=0)
    fit(model, train.x, train.y, epochs=5, batch_size=32, lr=0.03, seed=1)
    model.eval()
    return model


@pytest.fixture(scope="session")
def tiny_quantized(tiny_model, tiny_dataset):
    """4-bit adapted version of tiny_model (frozen)."""
    from repro.quantization import prepare_qat, qat_finetune
    train, _ = tiny_dataset
    q = prepare_qat(tiny_model, weight_bits=4, act_bits=8, per_channel=False)
    qat_finetune(q, train.x, train.y, epochs=1, batch_size=32, lr=0.002)
    q.freeze()
    return q


# -- mixed job-set generator (pool partition property tests) ---------- #
#
# A job "menu" is a list of (kind, rows) tuples — the minimal shape the
# serving layer's grouping decision can see.  ``submit_job_menu`` turns a
# menu into real submissions against a shared (orig, quant, edge) model
# triple, so a property test can replay the *same* menu through the
# sequential scheduler and the worker pool and compare the partitions
# they form.

def mixed_job_menus(max_jobs: int = 6, max_rows: int = 3):
    """Hypothesis strategy: small mixed attack/predict/predict_float
    job sets (imported lazily so non-property runs never need
    hypothesis)."""
    from hypothesis import strategies as st
    job = st.tuples(st.sampled_from(("attack", "predict", "predict_float")),
                    st.integers(1, max_rows))
    return st.lists(job, min_size=1, max_size=max_jobs)


def submit_job_menu(session, menu, pair, edge, x_edge, steps: int = 2):
    """Submit one (kind, rows) menu; returns the futures in menu order.

    Attack jobs get a fresh PGD per submission (distinct requests,
    shared victim models — the coalescible case); predict jobs run the
    compiled edge model; predict_float jobs the float original.
    """
    from repro.attacks import PGD
    orig, quant, x, y = pair
    futs = []
    for kind, rows in menu:
        if kind == "attack":
            futs.append(session.submit_attack(
                PGD(quant, steps=steps), x[:rows], y[:rows]))
        elif kind == "predict":
            futs.append(session.submit_predict(edge, x_edge[:rows]))
        else:
            futs.append(session.submit_predict(orig, x[:rows]))
    return futs


class FixedLogitModel:
    """Test double: a 'model' that returns preset logits row-by-row."""

    def __init__(self, logits: np.ndarray):
        self.logits = np.asarray(logits, dtype=np.float64)
        self._cursor = 0
        self.training = False

    def eval(self):
        self._cursor = 0
        return self

    def __call__(self, x):
        data = x.data if hasattr(x, "data") else np.asarray(x)
        n = len(data)
        out = self.logits[self._cursor:self._cursor + n]
        self._cursor += n
        if self._cursor >= len(self.logits):
            self._cursor = 0
        return Tensor(out)


@pytest.fixture
def fixed_logit_model():
    return FixedLogitModel
