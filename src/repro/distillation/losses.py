"""Knowledge-distillation losses (Hinton et al. 2015).

The semi-blackbox attack (§4.3) trains a full-precision surrogate to
imitate the adapted model: hard-label cross-entropy against the teacher's
predicted labels, plus temperature-softened KL against the teacher's
distribution.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor


def soften(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature-softened softmax of constant (teacher) logits."""
    z = np.asarray(logits, dtype=np.float64) / temperature
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def distillation_loss(student_logits: Tensor, teacher_logits: np.ndarray,
                      temperature: float = 4.0, alpha: float = 0.7) -> Tensor:
    """Hinton KD objective.

    ``alpha`` weights the soft (KL) term; ``1 - alpha`` weights hard-label
    CE against the teacher's argmax labels (the labels an attacker can
    observe even from a prediction-only API).  The soft term carries the
    classic ``T^2`` gradient-rescaling factor.
    """
    teacher_logits = np.asarray(teacher_logits)
    soft_targets = soften(teacher_logits, temperature)
    logp_t = F.log_softmax(student_logits * (1.0 / temperature), axis=-1)
    soft = F.kl_div(logp_t, soft_targets, reduction="batchmean") * (temperature ** 2)
    hard_labels = teacher_logits.argmax(axis=-1)
    hard = F.cross_entropy(student_logits, hard_labels)
    return soft * alpha + hard * (1.0 - alpha)
