"""Deterministic RNG helpers.

Every stochastic stage in the library takes an explicit seed or
``numpy.random.Generator``; these helpers derive independent child
generators from a root seed so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

SeedLike = Union[int, Tuple[int, ...]]


def generator(seed: SeedLike) -> np.random.Generator:
    """A fresh generator for ``seed`` (int or tuple of ints)."""
    return np.random.default_rng(seed)


def child_seed(root: int, *path: Union[int, str]) -> Tuple[int, ...]:
    """Derive a child seed tuple from a root seed and a label path.

    String labels hash stably (not via ``hash``, which is salted) so the
    same path yields the same seed across processes.
    """
    parts = [root]
    for p in path:
        if isinstance(p, str):
            acc = 0
            for ch in p:
                acc = (acc * 131 + ord(ch)) % (2 ** 31 - 1)
            parts.append(acc)
        else:
            parts.append(int(p))
    return tuple(parts)


def child_generator(root: int, *path: Union[int, str]) -> np.random.Generator:
    return np.random.default_rng(child_seed(root, *path))
