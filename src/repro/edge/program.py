"""Compiled integer inference programs — the edge engine's planned,
fused execution path.

:class:`EdgeProgram` lowers an :class:`~repro.edge.engine.EdgeModel`'s
op list into a pipeline planned for one (batch, input shape, dtype), the
fourth and final leg of the compiled-executor architecture
(``nn/graph.py`` forward replay, ``attacks/engine.py`` paired attacks,
``nn/train_graph.py`` training).  Three lowerings do the work:

**Zero-point folding.**  The eager ``QConv2d``/``QLinear`` center the
whole activation tensor before the matmul (``q - z_in``, an
O(N·C·H·W) int64 subtract-and-copy).  The program uses the identity
``W @ (q - z) = W @ q - z · rowsum(W)`` and folds ``z_in · Σw`` into the
quantized bias at plan time, so the centering pass disappears.  Padded
convolutions pad with ``z_in`` instead of 0 (the centered image's zero
*is* ``z_in`` on the raw grid), which keeps the identity exact on border
windows; the pad border is written once at plan time since it never
changes.

**Fused / LUT activations.**  A ``QReLU`` whose input and output grids
share one scale is absorbed into the preceding conv/linear's
requantization, TFLite-style, as a clamped output range: with conv
output grid ``(s, z1)`` and relu output grid ``(s, z2)`` the exact
composition of the two eager ops is ``clamp(t + z2, max(qmin, z2),
min(qmax, qmax - z1 + z2))`` where ``t`` is the requantized accumulator
— the relu's identity multiplier requantization is lossless on
non-negative inputs, so fusion is bit-exact and one full requantize
pass plus its intermediate tensor vanish.  When the grids differ the op
stays standalone but is lowered to a 256-entry lookup table built *by
the eager op itself* over its input grid, replacing the
multiply-round-shift arithmetic with one gather (bit-exact by
construction).

**Planned buffers.**  All scratch (pad images, im2col gathers,
accumulators, sign masks, activations) is pre-sized per program from a
:class:`~repro.nn.graph.ScratchPool` shared across the model's per-shape
programs, with activation buffers ping-ponged so producers and consumers
never alias.  The integer matmul runs as a float64 GEMM: with int8
weights and sub-9-bit activations every product and partial sum is an
integer below 2**53, so BLAS dgemm returns the exact integer
accumulator (the bound ``Σ|w|·max|q| + |bias|`` is checked per filter
at plan time, against both the 2**53 exactness limit and the int64
requantization headroom; layers that exceed it refuse to lower).  The
requantization multiply-round-shift then runs in place on one int64
buffer with broadcast-shaped ``m0``/``shift``/rounding constants built
at plan time, and the final clamp writes straight into the next int32
activation buffer — accumulators live in the narrowest width that is
provably safe (int8-valued float64 weights, int32 activations, one
int64 requantize buffer).

Safety mirrors ``graph.py``/``train_graph.py``: a freshly planned
program replays the build batch and must match the eager op loop
**bit for bit**, else it raises and :meth:`EdgeModel.predict` warns and
pins the eager loop for that shape — a fallback run is exactly the run
that was never compiled.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn.graph import ScratchPool
from ..serve import faults
from .engine import (Dequantize, EdgeModel, QConv2d, QFlatten, QLinear,
                     QMaxPool2d, QReLU, QuantizeInput, _prep_requant)

#: float64 GEMM exactness limit: integer sums must stay below 2**53
_F64_EXACT = np.int64(1) << 53
#: requantize headroom: |acc| * m0 (< 2**31) must stay inside int64
_REQUANT_SAFE = np.int64(1) << 31


class EdgeLoweringError(Exception):
    """An op sequence this planner cannot lower bit-exactly."""


def _window_view(x: np.ndarray, kh: int, kw: int, sh: int, sw: int):
    """Sliding (N, C, kh, kw, OH, OW) window view over NCHW ``x``."""
    N, C, H, W = x.shape
    oh = (H - kh) // sh + 1
    ow = (W - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x, shape=(N, C, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw), writeable=False)
    return view, oh, ow


def _fill_border(pad: np.ndarray, p: int, value: int) -> None:
    """Write a constant ``p``-wide border frame (plan-time, once)."""
    pad[:, :, :p, :].fill(value)
    pad[:, :, -p:, :].fill(value)
    pad[:, :, p:-p, :p].fill(value)
    pad[:, :, p:-p, -p:].fill(value)


def _scalar_qp(qp) -> Tuple[float, int, int, int]:
    if qp.axis is not None:
        raise EdgeLoweringError("activation grids must be per-tensor")
    return (float(qp.scale), int(qp.zero_point), int(qp.qmin), int(qp.qmax))


def _can_fuse_relu(prev, relu: QReLU) -> bool:
    """True when the relu is an exact clamp on the grid ``prev`` wrote."""
    try:
        s_in, z_in, lo_in, hi_in = _scalar_qp(relu.in_qp)
        s_out, _, _, _ = _scalar_qp(relu.out_qp)
        s_prev, z_prev, lo_prev, hi_prev = _scalar_qp(prev.out_qp)
    except EdgeLoweringError:
        return False
    return (s_in == s_out and s_in == s_prev and z_in == z_prev
            and lo_in == lo_prev and hi_in == hi_prev)


class _Step:
    """One planned pipeline stage: int/float buffers in, buffer out."""

    def run(self, q: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class _QuantizeStep(_Step):
    """Float pixels -> int32 grid, in the input's native float dtype."""

    def __init__(self, op: QuantizeInput, n: int, shape, dtype, pool,
                 out: np.ndarray):
        self.s = float(op.qp.scale)
        self.z = float(op.qp.zero_point)
        self.qmin, self.qmax = op.qp.qmin, op.qp.qmax
        fdtype = dtype if np.issubdtype(dtype, np.floating) else np.float64
        self.cast = None if np.issubdtype(dtype, np.floating) else np.float64
        self.fbuf = pool.acquire(("edge-qf",), n, shape[1:], fdtype, None)[:n]
        self.out = out

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.cast is not None:
            x = x.astype(self.cast)
        np.divide(x, self.s, out=self.fbuf)
        np.round(self.fbuf, out=self.fbuf)
        self.fbuf += self.z
        np.clip(self.fbuf, self.qmin, self.qmax, out=self.fbuf)
        np.copyto(self.out, self.fbuf, casting="unsafe")
        return self.out


class _MatmulMixin:
    """Shared conv/linear lowering: folded bias, exactness gate, fused
    or plain requantization bounds."""

    def _plan_requant(self, op, fused_relu: Optional[QReLU],
                      chan_shape: Optional[Tuple[int, ...]] = None):
        """(z_out, lo, hi, m0, rounding, total) for the output clamp.

        ``chan_shape`` reshapes per-channel multipliers to broadcast
        against the accumulator layout (convs: ``(G, 1, 1, 1, Fg)``);
        per-tensor multipliers stay size-1 and broadcast untouched.
        """
        _, z1, lo1, hi1 = _scalar_qp(op.out_qp)
        if fused_relu is None:
            z_out, lo, hi = z1, lo1, hi1
        else:
            _, z2, lo2, hi2 = _scalar_qp(fused_relu.out_qp)
            z_out = z2
            lo = max(lo2, z2)
            hi = min(hi2, hi1 - z1 + z2)
        m0, rounding, total = _prep_requant(op.m0, op.shift)
        if op.per_channel and chan_shape is not None:
            m0 = m0.reshape(chan_shape)
            rounding = rounding.reshape(chan_shape)
            total = total.reshape(chan_shape)
        return z_out, lo, hi, m0, rounding, total

    @staticmethod
    def _fold_bias(op) -> np.ndarray:
        w = op.q_weight.reshape(op.q_weight.shape[0], -1)
        z_in = int(op.in_qp.zero_point)
        return op.bias_q - z_in * w.sum(axis=1)

    @staticmethod
    def _check_bounds(op, eff_bias: np.ndarray) -> None:
        w = op.q_weight.reshape(op.q_weight.shape[0], -1)
        qabs = max(abs(int(op.in_qp.qmin)), abs(int(op.in_qp.qmax)))
        bound = (np.abs(w).sum(axis=1) * qabs + np.abs(eff_bias)).max()
        if bound >= min(_F64_EXACT, _REQUANT_SAFE):
            raise EdgeLoweringError(
                f"accumulator bound {bound} exceeds the exact-GEMM / "
                "requantization headroom")

    def _requant_clamp_store(self, out_view: np.ndarray) -> None:
        """Exact-int float64 accumulator -> requantized int32 output.

        The multiply-round-shift runs in place on the planned int64
        buffer; the final clamp writes straight into ``out_view``.  The
        one home of this sequence for both conv and linear steps — it
        must stay bit-equal to ``engine._requantize_prepped``.
        """
        acc = self.acci
        np.copyto(acc, self.accf, casting="unsafe")  # exact: integer values
        np.multiply(acc, self.m0, out=acc)
        np.less(acc, 0, out=self.neg)
        acc += self.rounding
        np.subtract(acc, self.neg, out=acc)
        np.right_shift(acc, self.total, out=acc)
        acc += self.z_out
        np.clip(acc, self.lo, self.hi, out=out_view)


class _ConvStep(_Step, _MatmulMixin):
    """Zero-point-folded integer convolution via exact float64 GEMM."""

    def __init__(self, op: QConv2d, n: int, shape, pool,
                 fused_relu: Optional[QReLU], out: np.ndarray):
        N, C, H, W = shape
        F_out, _, kh, kw = op.q_weight.shape
        G = op.groups
        Cg, Fg = C // G, F_out // G
        st, p = op.stride, op.padding
        oh = (H + 2 * p - kh) // st + 1
        ow = (W + 2 * p - kw) // st + 1
        self.kh, self.kw, self.st, self.p = kh, kw, st, p
        self.G, self.Cg = G, Cg
        Kg = Cg * kh * kw
        eff_bias = self._fold_bias(op)
        self._check_bounds(op, eff_bias)
        self.biasf = eff_bias.astype(np.float64).reshape(G, 1, 1, 1, Fg)
        # (G, Kg, Fg) float64 weight panels for the batched dgemm
        self.wf = np.ascontiguousarray(
            op.q_weight.reshape(G, Fg, Kg).transpose(0, 2, 1)
            .astype(np.float64))
        (self.z_out, self.lo, self.hi, self.m0, self.rounding,
         self.total) = self._plan_requant(op, fused_relu, (G, 1, 1, 1, Fg))
        M = N * oh * ow
        if p:
            z_in = int(op.in_qp.zero_point)
            # padding width keys the buffer too: same padded shape with a
            # different border width must not share plan-time border fills
            pad = pool.acquire(("edge-pad", z_in, p), n,
                               (C, H + 2 * p, W + 2 * p), np.int32, None)[:n]
            # the border is the folded zero-point, constant across runs
            _fill_border(pad, p, z_in)
            self.pad = pad
            self.pad_interior = pad[:, :, p:-p, p:-p]
            view, _, _ = _window_view(pad, kh, kw, st, st)
            self.src = view.reshape(N, G, Cg, kh, kw, oh, ow).transpose(
                1, 0, 5, 6, 2, 3, 4)
        else:
            self.pad = None

        def scratch(tag, per_elem, dtype):
            # group-major scratch carved from a flat pooled slab: the
            # pool's growable axis stays the batch, the (G, N, ...)
            # layout the batched GEMM needs is a plain reshape of it
            flat = pool.acquire((tag,), n, (G * per_elem,), dtype, None)[:n]
            return flat.reshape(G, N, oh, ow, -1)

        self.colsf = scratch("edge-colsf", oh * ow * Kg, np.float64)
        self.accf = scratch("edge-accf", oh * ow * Fg, np.float64)
        self.acci = scratch("edge-acci", oh * ow * Fg, np.int64)
        self.neg = scratch("edge-neg", oh * ow * Fg, np.bool_)
        # (G, N, OH, OW, Fg) write view of the (N, F, OH, OW) activation
        self.out = out
        self.out_view = out.reshape(N, G, Fg, oh, ow).transpose(1, 0, 3, 4, 2)
        self.Kg = Kg
        self.M, self.Fg = M, Fg

    def run(self, q: np.ndarray) -> np.ndarray:
        if self.pad is not None:
            np.copyto(self.pad_interior, q)
            src = self.src
        else:
            view, oh, ow = _window_view(q, self.kh, self.kw, self.st, self.st)
            N = q.shape[0]
            src = view.reshape(N, self.G, self.Cg, self.kh, self.kw,
                               oh, ow).transpose(1, 0, 5, 6, 2, 3, 4)
        cols = self.colsf
        np.copyto(cols.reshape(src.shape), src)      # gather + int->f64 cast
        np.matmul(cols.reshape(self.G, self.M, self.Kg), self.wf,
                  out=self.accf.reshape(self.G, self.M, self.Fg))
        self.accf += self.biasf
        self._requant_clamp_store(self.out_view)
        return self.out


class _LinearStep(_Step, _MatmulMixin):
    """Zero-point-folded integer linear layer via exact float64 GEMM."""

    def __init__(self, op: QLinear, n: int, shape, pool,
                 fused_relu: Optional[QReLU], out: np.ndarray):
        _, K = shape
        if K != op.q_weight.shape[1]:
            raise EdgeLoweringError(
                f"linear expects {op.q_weight.shape[1]} features, got {K}")
        eff_bias = self._fold_bias(op)
        self._check_bounds(op, eff_bias)
        self.biasf = eff_bias.astype(np.float64)
        self.wf = np.ascontiguousarray(op.q_weight.T.astype(np.float64))
        # per-channel multipliers broadcast along the (N, F) feature axis
        (self.z_out, self.lo, self.hi, self.m0, self.rounding,
         self.total) = self._plan_requant(op, fused_relu)
        F_out = op.q_weight.shape[0]
        self.xf = pool.acquire(("edge-colsf",), n, (K,), np.float64, None)[:n]
        self.accf = pool.acquire(("edge-accf",), n, (F_out,), np.float64,
                                 None)[:n]
        self.acci = pool.acquire(("edge-acci",), n, (F_out,), np.int64,
                                 None)[:n]
        self.neg = pool.acquire(("edge-neg",), n, (F_out,), np.bool_,
                                None)[:n]
        self.out = out

    def run(self, q: np.ndarray) -> np.ndarray:
        np.copyto(self.xf, q)
        np.matmul(self.xf, self.wf, out=self.accf)
        self.accf += self.biasf
        self._requant_clamp_store(self.out)
        return self.out


class _ReLUStep(_Step):
    """Standalone QReLU as a grid-sized lookup table (one gather)."""

    def __init__(self, op: QReLU, out: np.ndarray):
        self.qmin = int(op.in_qp.qmin)
        grid = np.arange(self.qmin, int(op.in_qp.qmax) + 1, dtype=np.int32)
        self.lut = np.ascontiguousarray(op(grid).astype(np.int32))
        self.out = out

    def run(self, q: np.ndarray) -> np.ndarray:
        np.subtract(q, self.qmin, out=q)   # q is a dead pooled buffer
        np.take(self.lut, q, out=self.out, mode="clip")
        return self.out


class _PoolStep(_Step):
    """Integer max pooling over a planned window view."""

    def __init__(self, op: QMaxPool2d, n: int, shape, pool, out: np.ndarray):
        N, C, H, W = shape
        k = op.kernel
        self.k = k
        self.st = op.stride if op.stride is not None else k
        self.p = op.padding
        if self.p:
            fill = int(np.iinfo(np.int32).min)
            p = self.p
            pad = pool.acquire(("edge-pad", fill, p), n,
                               (C, H + 2 * p, W + 2 * p),
                               np.int32, None)[:n]
            _fill_border(pad, p, fill)
            self.pad = pad
            self.pad_interior = pad[:, :, p:-p, p:-p]
            self.src, _, _ = _window_view(pad, k, k, self.st, self.st)
        else:
            self.pad = None
        self.out = out

    def run(self, q: np.ndarray) -> np.ndarray:
        if self.pad is not None:
            np.copyto(self.pad_interior, q)
            src = self.src
        else:
            src, _, _ = _window_view(q, self.k, self.k, self.st, self.st)
        src.max(axis=(2, 3), out=self.out)
        return self.out


class _FlattenStep(_Step):
    def run(self, q: np.ndarray) -> np.ndarray:
        return q.reshape(len(q), -1)


class _DequantStep(_Step):
    """Integer grid -> freshly-owned float64 logits."""

    def __init__(self, op: Dequantize):
        self.s = float(op.qp.scale)
        self.z = float(op.qp.zero_point)

    def run(self, q: np.ndarray) -> np.ndarray:
        out = np.empty(q.shape, dtype=np.float64)
        np.copyto(out, q)
        out -= self.z
        out *= self.s
        return out


class EdgeProgram:
    """A planned, fused integer pipeline for one (batch shape, dtype).

    Build with the :class:`EdgeModel` whose ops to lower and an example
    batch; construction validates the program bit-for-bit against the
    model's eager op loop on that batch and raises
    :class:`EdgeLoweringError` on any mismatch or unloweable op.
    """

    def __init__(self, model: EdgeModel, example: np.ndarray,
                 pool: Optional[ScratchPool] = None, validate: bool = True):
        # chaos-harness injection point: an error fault here is a failed
        # plan build, caught by EdgeModel's loud eager-fallback path
        faults.fire("edge.plan.build")
        x = np.asarray(example)
        if x.ndim < 2 or len(x) == 0:
            raise EdgeLoweringError("example batch must be non-empty")
        pool = pool if pool is not None else ScratchPool()
        n = len(x)
        shape: Tuple[int, ...] = x.shape
        self.steps: List[_Step] = []
        self.fused_relus = 0
        parity = 0
        owns_current = False   # does the running value live in our buffers?

        def act(new_shape) -> np.ndarray:
            nonlocal parity, owns_current
            buf = pool.acquire(("edge-act", parity), n, tuple(new_shape[1:]),
                               np.int32, None)[:n]
            parity ^= 1
            owns_current = True
            return buf

        ops = list(model.ops)
        i = 0
        while i < len(ops):
            op = ops[i]
            if isinstance(op, QuantizeInput):
                out = act(shape)
                self.steps.append(_QuantizeStep(op, n, shape, x.dtype,
                                                pool, out))
            elif isinstance(op, (QConv2d, QLinear)):
                fused = None
                if (i + 1 < len(ops) and isinstance(ops[i + 1], QReLU)
                        and _can_fuse_relu(op, ops[i + 1])):
                    fused = ops[i + 1]
                    self.fused_relus += 1
                    i += 1
                if isinstance(op, QConv2d):
                    if len(shape) != 4:
                        raise EdgeLoweringError("conv input must be NCHW")
                    N, C, H, W = shape
                    kh, kw = op.q_weight.shape[2:]
                    oh = (H + 2 * op.padding - kh) // op.stride + 1
                    ow = (W + 2 * op.padding - kw) // op.stride + 1
                    if oh < 1 or ow < 1 or C % op.groups:
                        raise EdgeLoweringError("conv geometry is invalid")
                    shape = (N, op.q_weight.shape[0], oh, ow)
                    out = act(shape)
                    self.steps.append(_ConvStep(op, n, (N, C, H, W), pool,
                                                fused, out))
                else:
                    if len(shape) != 2:
                        raise EdgeLoweringError("linear input must be 2-D")
                    in_shape = shape
                    shape = (shape[0], op.q_weight.shape[0])
                    out = act(shape)
                    self.steps.append(_LinearStep(op, n, in_shape, pool,
                                                  fused, out))
            elif isinstance(op, QReLU):
                if not owns_current:
                    # the LUT step reclaims its input buffer in place,
                    # which must never be the caller's array
                    raise EdgeLoweringError("relu on the raw program input")
                out = act(shape)
                self.steps.append(_ReLUStep(op, out))
            elif isinstance(op, QMaxPool2d):
                if len(shape) != 4:
                    raise EdgeLoweringError("maxpool input must be NCHW")
                N, C, H, W = shape
                st = op.stride if op.stride is not None else op.kernel
                oh = (H + 2 * op.padding - op.kernel) // st + 1
                ow = (W + 2 * op.padding - op.kernel) // st + 1
                if oh < 1 or ow < 1:
                    raise EdgeLoweringError("maxpool geometry is invalid")
                shape = (N, C, oh, ow)
                out = act(shape)
                self.steps.append(_PoolStep(op, n, (N, C, H, W), pool, out))
            elif isinstance(op, QFlatten):
                shape = (shape[0], int(np.prod(shape[1:])))
                self.steps.append(_FlattenStep())
            elif isinstance(op, Dequantize):
                self.steps.append(_DequantStep(op))
            else:
                raise EdgeLoweringError(
                    f"cannot lower op {type(op).__name__}")
            i += 1
        # only _DequantStep allocates an owned result; any other tail
        # leaves the value in a pooled buffer the next run() overwrites
        self._owns_output = bool(self.steps) and isinstance(
            self.steps[-1], _DequantStep)
        if validate:
            self._validate(model, x)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the planned pipeline; returns freshly-owned logits."""
        # kernel-dispatch injection point (error faults model a kernel
        # failing at dispatch time; the serving ladder degrades to eager)
        faults.fire("edge.dispatch")
        q = np.asarray(x)
        for step in self.steps:
            q = step.run(q)
        return q if self._owns_output else q.copy()

    # -- validation ----------------------------------------------------- #
    def _validate(self, model: EdgeModel, example: np.ndarray) -> None:
        faults.fire("edge.plan.validate")
        ref = model._eager_forward(example)
        got = self.run(example)
        # corruption injection point: flips one element of the *compiled*
        # output — validation is the defense against silent corruption,
        # so the flip must be caught right here, never downstream
        faults.corrupt("edge.plan.validate", got)
        if (got.shape != ref.shape or got.dtype != ref.dtype
                or not np.array_equal(got, ref)):
            raise EdgeLoweringError(
                "compiled edge program does not match the eager op loop")
