"""``repro.distillation`` — knowledge distillation for surrogate models."""

from .distill import agreement, distill
from .losses import distillation_loss, soften

__all__ = ["distill", "agreement", "distillation_loss", "soften"]
