"""Result formatting and persistence for the experiment harness."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

def _results_dir() -> str:
    """Resolved at call time so REPRO_RESULTS can be set per run/test."""
    return os.environ.get(
        "REPRO_RESULTS",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results"))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table (floats rendered to 3 decimals)."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(rows: Sequence[Dict[str, Any]], title: str) -> str:
    """Render [{'metric':..., 'paper':..., 'measured':...}] comparisons."""
    return format_table(
        ["metric", "paper", "measured"],
        [[r["metric"], r["paper"], r["measured"]] for r in rows],
        title=title)


def save_results(name: str, payload: Dict[str, Any],
                 results_dir: Optional[str] = None) -> str:
    """Persist an experiment's results dict as JSON; returns the path."""
    out_dir = results_dir if results_dir is not None else _results_dir()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=_jsonable)
    return path


def _jsonable(obj: Any):
    import numpy as np
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return vars(obj)
    raise TypeError(f"not JSON-serializable: {type(obj)}")
