"""``repro.experiments`` — the harness regenerating every table and
figure of the paper (see DESIGN.md §4 for the experiment index)."""

from .artifacts import ArtifactStore, default_store
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, paper_vs_measured, save_results

__all__ = [
    "ExperimentConfig", "ARCHITECTURES", "Pipeline",
    "ArtifactStore", "default_store",
    "format_table", "paper_vs_measured", "save_results",
]
