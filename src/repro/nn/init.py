"""Weight initializers.

Every initializer takes an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed (a requirement for the
experiment artifact cache).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:           # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:         # conv: (out, in/groups, kh, kw)
        rf = shape[2] * shape[3]
        fan_in = shape[1] * rf
        fan_out = shape[0] * rf
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He initialization (normal), appropriate for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He initialization (uniform)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot initialization (uniform)."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
