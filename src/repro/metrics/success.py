"""Attack success metrics, exactly as the paper defines them (§5.1).

A successful *evasive* attack must both (a) leave the original model's
prediction correct on the perturbed input, and (b) flip the adapted
model's prediction.  The evaluation set is pre-filtered to samples every
involved model classifies correctly, so a flip is necessarily caused by
the perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.module import Module
from ..training.evaluate import predict_logits, predict_probs


@dataclass
class SuccessReport:
    """All §5.1 metrics plus the Fig 1 outcome quadrants for one attack."""

    top1_success_rate: float
    top5_success_rate: float
    attack_only_success_rate: float      # Table 2: adapted flips, original free
    confidence_delta: float              # mean p_orig[y] - p_adapted[y] on x_adv
    quadrant_both_correct: float         # Fig 1 categories (fractions sum to 1)
    quadrant_orig_correct_adapted_incorrect: float
    quadrant_both_incorrect: float
    quadrant_orig_incorrect_adapted_correct: float
    n: int

    @property
    def evasion_cost(self) -> float:
        """How much attack-only success exceeds evasive success — the cost
        of the evasiveness constraint (§5.2 'Evasion cost')."""
        return self.attack_only_success_rate - self.top1_success_rate


def evaluate_attack(original: Module, adapted: Module, x_adv: np.ndarray,
                    y: np.ndarray, batch_size: int = 128,
                    topk: int = 5) -> SuccessReport:
    """Score perturbed images ``x_adv`` with true labels ``y``.

    ``topk`` parameterizes the paper's top-5 metric.  The paper's k=5 on
    1000 ImageNet classes inspects 0.5% of the label space; on this
    reproduction's smaller label spaces the same *fraction* corresponds
    to a smaller k, so experiments report k scaled to the class count
    (see EXPERIMENTS.md).
    """
    y = np.asarray(y)
    logits_o = predict_logits(original, x_adv, batch_size)
    logits_a = predict_logits(adapted, x_adv, batch_size)
    pred_o = logits_o.argmax(axis=1)
    pred_a = logits_a.argmax(axis=1)
    o_ok = pred_o == y
    a_ok = pred_a == y

    top1 = o_ok & ~a_ok
    # top-k: the adapted model's (wrong) top-1 does not even appear in the
    # original model's top-k for the same input.
    topk_o = np.argsort(-logits_o, axis=1)[:, :topk]
    appears = (topk_o == pred_a[:, None]).any(axis=1)
    top5 = top1 & ~appears

    probs_o = _softmax(logits_o)
    probs_a = _softmax(logits_a)
    rows = np.arange(len(y))
    conf_delta = probs_o[rows, y] - probs_a[rows, y]

    n = len(y)
    return SuccessReport(
        top1_success_rate=float(top1.mean()),
        top5_success_rate=float(top5.mean()),
        attack_only_success_rate=float((~a_ok).mean()),
        confidence_delta=float(conf_delta.mean()),
        quadrant_both_correct=float((o_ok & a_ok).mean()),
        quadrant_orig_correct_adapted_incorrect=float((o_ok & ~a_ok).mean()),
        quadrant_both_incorrect=float((~o_ok & ~a_ok).mean()),
        quadrant_orig_incorrect_adapted_correct=float((~o_ok & a_ok).mean()),
        n=n,
    )


def natural_confidence_delta(original: Module, adapted: Module, x: np.ndarray,
                             y: np.ndarray, batch_size: int = 128) -> float:
    """Mean p_orig[y] - p_adapted[y] on *natural* images (Fig 6c's
    'Original Image' bar)."""
    y = np.asarray(y)
    rows = np.arange(len(y))
    po = predict_probs(original, x, batch_size)[rows, y]
    pa = predict_probs(adapted, x, batch_size)[rows, y]
    return float((po - pa).mean())


def targeted_reach(adapted: Module, x_adv: np.ndarray, y: np.ndarray,
                   target: int, batch_size: int = 128) -> float:
    """Fraction of perturbed samples the adapted model sends to ``target``
    (the §6 targeted-attack metric)."""
    pred = predict_logits(adapted, x_adv, batch_size).argmax(axis=1)
    return float(((pred == target) & (pred != np.asarray(y))).mean())


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)
