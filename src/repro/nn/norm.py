"""Batch-independent normalization layers.

BatchNorm's train/eval statistics mismatch is one source of fp32-vs-int8
divergence; LayerNorm and GroupNorm are the batch-independent
alternatives, included so adaptation experiments can control for that
factor (and because a credible nn library ships them).
"""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter
from .tensor import Tensor


class LayerNorm(Module):
    """Normalize over the trailing feature dimension of (N, F) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        xhat = centered * ((var + self.eps) ** -0.5)
        return xhat * self.weight + self.bias

    def __repr__(self):
        return f"LayerNorm({self.num_features})"


class GroupNorm(Module):
    """Normalize NCHW tensors over (channels/groups, H, W) per group."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(f"{num_channels} channels not divisible by "
                             f"{num_groups} groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        g = self.num_groups
        grouped = x.reshape(n, g, c // g, h, w)
        mu = grouped.mean(axis=(2, 3, 4), keepdims=True)
        centered = grouped - mu
        var = (centered * centered).mean(axis=(2, 3, 4), keepdims=True)
        xhat = (centered * ((var + self.eps) ** -0.5)).reshape(n, c, h, w)
        wgt = self.weight.reshape(1, c, 1, 1)
        b = self.bias.reshape(1, c, 1, 1)
        return xhat * wgt + b

    def __repr__(self):
        return f"GroupNorm({self.num_groups}, {self.num_channels})"


class InstanceNorm2d(GroupNorm):
    """GroupNorm with one group per channel."""

    def __init__(self, num_channels: int, eps: float = 1e-5):
        super().__init__(num_channels, num_channels, eps)
