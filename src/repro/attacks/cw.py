"""Carlini-Wagner L-inf attack (the §5.4 baseline).

Uses the CW margin loss

    f(x) = max(Z(x)_y - max_{i != y} Z(x)_i, -kappa)

inside the PGD projection loop, the formulation Madry et al. (2018)
adopt for apples-to-apples L-inf comparison (and the hyper-parameter
setup the paper says it follows).
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient)


def cw_margin_loss(logits: Tensor, y: np.ndarray, kappa: float = 0.0) -> Tensor:
    """Summed CW f6 loss (to be *descended*, i.e. we ascend its negation).

    Positive while the true class still wins; minimized at ``-kappa``
    once the runner-up overtakes by margin ``kappa``.
    """
    y = np.asarray(y)
    true_logit = logits.gather_rows(y)
    # mask out the true class with -inf before taking the runner-up max
    mask = np.zeros(logits.shape, dtype=logits.data.dtype)
    mask[np.arange(len(y)), y] = -np.inf
    other_best = (logits + Tensor(np.nan_to_num(mask, neginf=-1e9))).max(axis=1)
    margin = true_logit - other_best
    return margin.maximum(-kappa).sum()


class CWLinf(Attack):
    """CW margin loss under an L-inf budget via iterated sign steps."""

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 kappa: float = 0.0, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.model = model
        self.model.eval()
        self.kappa = float(kappa)

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        # ascend -f: push the true-class margin down
        return input_gradient(
            lambda xt: -cw_margin_loss(self.model(xt), y, self.kappa), x_adv)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """CW's goal: the target model mispredicts."""
        from ..training.evaluate import predict_labels
        return predict_labels(self.model, x_adv, batch_size=len(x_adv)) != y
