"""Deterministic, seeded fault injection for the serving control plane.

Chaos testing the resilience layer needs faults that are *named* (so a
test can say "plan validation corrupts on rebuild"), *seeded* (so a CI
failure replays bit-for-bit from ``REPRO_FAULT_SEED``) and *free of
wall-clock time* (latency faults advance a
:class:`~repro.serve.resilience.ManualClock` instead of sleeping).

Production code is instrumented with a handful of **named injection
points** — a single ``faults.fire(point)`` / ``faults.corrupt(point,
arr)`` call that is a no-op unless an injector is installed:

======================  ================================================
``attack.plan.build``   :func:`~repro.attacks.base.compile_model` and
                        the paired-executor builder, before compiling —
                        an error fault is a failed plan build.
``edge.plan.build``     :class:`~repro.edge.program.EdgeProgram`
                        construction — an error fault aborts lowering
                        (caught by the loud eager-fallback path).
``edge.plan.validate``  the compiled-vs-eager bit comparison — a
                        corruption fault flips one element of the
                        compiled output, so validation *must* catch it;
                        an error fault aborts validation outright.
``edge.dispatch``       :meth:`EdgeProgram.run` — an error fault is a
                        kernel failure at dispatch time.
``dispatch.attack``     scheduler attack dispatch (compiled rungs only).
``dispatch.predict``    scheduler inference dispatch (compiled rungs
                        only).
``dispatch.predict_float``
                        scheduler float-inference dispatch (compiled
                        rungs only) — an error fault quarantines the
                        coalesced float key and walks members down the
                        ladder.
``attack.step``         between compiled attack steps (fired by
                        :meth:`DeadlineToken.poll <repro.serve.
                        resilience.DeadlineToken.poll>`) — latency
                        faults burn deadline budget mid-attack.
``queue.tick``          once per scheduler dispatch round — latency
                        faults model queueing delay.
======================  ================================================

Corruption faults are deliberately only injectable *upstream of a
validator* (plan validation): the serving layer's defence against
silent corruption **is** bit-validation, so the harness corrupts where
a validator must catch it and never where nothing could.  Likewise the
eager rung of the degradation ladder is never instrumented — it is the
reference implementation the ladder degrades *to*, which is what lets
the chaos suite assert that every completed job is still bit-identical
to a solo eager run.

Doctest — deterministic, seeded, clock-driven::

    >>> from .resilience import ManualClock
    >>> clock = ManualClock()
    >>> inj = FaultInjector([FaultSpec("queue.tick", "latency", rate=1.0,
    ...                                delay_s=0.25)], seed=7, clock=clock)
    >>> with inject(inj):
    ...     fire("queue.tick")
    ...     fire("queue.tick")
    >>> clock.now()
    0.5
    >>> inj.fired("queue.tick", "latency")
    2
    >>> fire("queue.tick")        # no injector installed: no-op
    >>> clock.now()
    0.5
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .resilience import ManualClock, ServeError

#: every fault kind the injector understands
KINDS = ("error", "latency", "corrupt")


class InjectedFault(ServeError):
    """An error fault fired at a named injection point."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class FaultSpec:
    """One fault stream: where, what, how often.

    ``rate`` is the per-probe fire probability (1.0 = every probe);
    ``max_fires`` bounds total fires so a spec can model a *transient*
    fault that heals (None = unbounded); ``delay_s`` is the clock
    advance per latency fire.
    """

    point: str
    kind: str
    rate: float = 1.0
    max_fires: Optional[int] = None
    delay_s: float = 0.05

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


class _Stream:
    """Runtime state of one spec: its own RNG stream and fire budget."""

    def __init__(self, spec: FaultSpec, seed: int, index: int):
        self.spec = spec
        # one independent, reconstructible stream per (seed, point, slot)
        self.rng = np.random.default_rng(
            [seed, zlib.crc32(spec.point.encode()), index])
        self.fires = 0
        self.probes = 0

    def draw(self) -> bool:
        self.probes += 1
        if (self.spec.max_fires is not None
                and self.fires >= self.spec.max_fires):
            return False
        if self.spec.rate < 1.0 and self.rng.random() >= self.spec.rate:
            return False
        self.fires += 1
        return True


class FaultInjector:
    """Seeded fault plan over the named injection points.

    Every spec owns an independent RNG stream keyed by (seed, point,
    slot), so adding or removing one spec never perturbs another's
    draw sequence — the property that makes "same seed, same chaos"
    hold as fault plans evolve.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0,
                 clock: Optional[ManualClock] = None):
        self.seed = int(seed)
        self.clock = clock
        self._streams: Dict[str, List[_Stream]] = {}
        for i, spec in enumerate(specs):
            self._streams.setdefault(spec.point, []).append(
                _Stream(spec, self.seed, i))
        self.log: List[Dict[str, Any]] = []

    # -- the two hooks --------------------------------------------------- #
    def fire(self, point: str) -> None:
        """Probe ``point``: latency faults advance the clock, then an
        error fault (if drawn) raises :class:`InjectedFault`."""
        err = False
        for stream in self._streams.get(point, ()):
            kind = stream.spec.kind
            if kind == "corrupt" or not stream.draw():
                continue
            if kind == "latency":
                if self.clock is not None:
                    self.clock.advance(stream.spec.delay_s)
                self.log.append({"point": point, "kind": "latency",
                                 "delay_s": stream.spec.delay_s})
            else:
                self.log.append({"point": point, "kind": "error"})
                err = True
        if err:
            raise InjectedFault(point)

    def corrupt(self, point: str, arr: np.ndarray) -> bool:
        """Probe ``point`` with a corruption target: flips one element
        of ``arr`` in place when the fault fires.  Returns whether it
        did (tests assert the downstream validator caught it)."""
        hit = False
        for stream in self._streams.get(point, ()):
            if stream.spec.kind != "corrupt" or not stream.draw():
                continue
            flat = arr.reshape(-1)
            idx = int(stream.rng.integers(flat.size))
            flat[idx] += np.asarray(1, dtype=arr.dtype)
            self.log.append({"point": point, "kind": "corrupt",
                             "index": idx})
            hit = True
        return hit

    # -- accounting ------------------------------------------------------ #
    def fired(self, point: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(1 for rec in self.log
                   if (point is None or rec["point"] == point)
                   and (kind is None or rec["kind"] == kind))

    @property
    def stats(self) -> Dict[str, Dict[str, int]]:
        """``{point: {kind: fires}}`` over everything fired so far."""
        out: Dict[str, Dict[str, int]] = {}
        for rec in self.log:
            by_kind = out.setdefault(rec["point"], {})
            by_kind[rec["kind"]] = by_kind.get(rec["kind"], 0) + 1
        return out


# --------------------------------------------------------------------- #
# module-level installation (what the instrumented code calls)
# --------------------------------------------------------------------- #

_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


@contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` for the duration of the block (no nesting —
    the previous injector, if any, is restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def fire(point: str) -> None:
    """Production-side hook: no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point)


def corrupt(point: str, arr: np.ndarray) -> bool:
    if _ACTIVE is not None:
        return _ACTIVE.corrupt(point, arr)
    return False


def default_chaos_specs(deadline_pressure: bool = True) -> List[FaultSpec]:
    """The stock chaos plan: every fault class at every point family.

    Error faults are transient (bounded fires) so the cool-down
    re-probe story is exercised end to end; latency faults are
    unbounded and, with ``deadline_pressure``, aggressive enough to
    expire realistic per-job deadlines mid-attack.
    """
    specs = [
        FaultSpec("attack.plan.build", "error", rate=0.5, max_fires=2),
        FaultSpec("edge.plan.build", "error", rate=0.5, max_fires=1),
        FaultSpec("edge.plan.validate", "corrupt", rate=0.5, max_fires=2),
        FaultSpec("edge.dispatch", "error", rate=0.3, max_fires=1),
        FaultSpec("dispatch.attack", "error", rate=0.25, max_fires=2),
        FaultSpec("dispatch.predict", "error", rate=0.25, max_fires=1),
        FaultSpec("dispatch.predict_float", "error", rate=0.25, max_fires=1),
        FaultSpec("queue.tick", "latency", rate=1.0, delay_s=0.02),
    ]
    if deadline_pressure:
        specs.append(FaultSpec("attack.step", "latency", rate=0.5,
                               delay_s=0.05))
    return specs
