"""§5.5: robust training as a defense.

Paper: with a PGD-minimax robust-trained ResNet50 as the original and a
quantized derivative as the adapted model, both attacks' evasive success
collapses (PGD 10.5%; DIVA 12.8% at c=5); DIVA retains an edge, and at
c=1.5 trades 4% attack-only success for +10.1% evasive success over PGD.
Robust accuracy of the quantized model under each attack is also
reported (paper: 22.63% PGD, 21.77% DIVA).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..attacks import DIVA, PGD
from ..metrics import evaluate_attack
from ..training import predict_labels
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results

DEFAULT_C_VALUES = (1.0, 1.5, 5.0)


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, arch: str = "resnet",
        c_values: Sequence[float] = DEFAULT_C_VALUES,
        verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.robust_original(arch)
    quant = pipe.robust_quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"sec55-{arch}")
    # one budget throughout §5.5: the models were hardened at robust_eps,
    # and the attacks run at the same bound (as in the paper)
    kw = dict(eps=cfg.robust_eps, alpha=cfg.robust_eps / 8, steps=cfg.steps)

    results: Dict = {"arch": arch, "attacks": {}}
    rows = []

    x_pgd = PGD(quant, **kw).generate(atk_set.x, atk_set.y)
    rp = evaluate_attack(orig, quant, x_pgd, atk_set.y, topk=cfg.topk)
    robust_acc_pgd = float((predict_labels(quant, x_pgd) == atk_set.y).mean())
    results["attacks"]["pgd"] = {
        "top1_success": rp.top1_success_rate,
        "attack_only_success": rp.attack_only_success_rate,
        "robust_accuracy": robust_acc_pgd,
    }
    rows.append(["PGD", "-", f"{rp.top1_success_rate:.1%}",
                 f"{rp.attack_only_success_rate:.1%}", f"{robust_acc_pgd:.1%}"])

    # the c grid runs as one vectorized sweep on the shared program pair
    diva_advs = DIVA(orig, quant, c=c_values[0], **kw).generate_sweep(
        atk_set.x, atk_set.y, [{"c": float(c)} for c in c_values])
    for c, x_diva in zip(c_values, diva_advs):
        rd = evaluate_attack(orig, quant, x_diva, atk_set.y, topk=cfg.topk)
        robust_acc = float((predict_labels(quant, x_diva) == atk_set.y).mean())
        results["attacks"][f"diva_c{c}"] = {
            "top1_success": rd.top1_success_rate,
            "attack_only_success": rd.attack_only_success_rate,
            "robust_accuracy": robust_acc,
        }
        rows.append([f"DIVA", f"{c}", f"{rd.top1_success_rate:.1%}",
                     f"{rd.attack_only_success_rate:.1%}", f"{robust_acc:.1%}"])

    table = format_table(
        ["Attack", "c", "Top-1 evasive", "Attack-only", "Robust acc (quant)"],
        rows, title=f"§5.5 — attacks on robust-trained {arch} + quantization")
    results["table"] = table
    if verbose:
        print(table)
    save_results("sec55", results)
    return results
