PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-all docs-check

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) -m repro.benchrunner

bench-all:
	$(PYTHON) -m repro.benchrunner --all

# scripts/check_docs.py owns the authoritative doctest module list
# (DOCTEST_MODULES) and the markdown link/anchor check; the direct
# `python -m doctest` line is a packaging-free smoke for the one
# dependency-less module (runs without PYTHONPATH or install).
docs-check:
	$(PYTHON) -m doctest src/repro/serve/cache.py
	$(PYTHON) scripts/check_docs.py
