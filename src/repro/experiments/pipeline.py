"""Shared experiment pipeline: datasets, the model grid, attack sets.

Every experiment module builds on these accessors; all heavy artifacts
go through the :class:`~repro.experiments.artifacts.ArtifactStore`, so
the grid trains once per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data import (ArrayDataset, SynthFacesConfig, SynthImageNetConfig,
                    generate_synth_digits, generate_synth_faces,
                    select_attack_set, standard_splits)
from ..defense import adversarial_fit
from ..distillation import distill
from ..models import build_model
from ..nn.module import Module
from ..pruning import prune_finetune, prune_then_quantize
from ..quantization import QATModel, prepare_qat, qat_finetune
from ..training import fit, predict_labels
from .artifacts import ArtifactStore, default_store
from .config import ExperimentConfig


class Pipeline:
    """Accessor hub for one experiment configuration.

    Applies the configuration's dtype policy: the process-wide default
    tensor dtype is set to ``cfg.dtype`` on construction *and re-pinned
    at every accessor entry*, so artifacts always build at their own
    configured precision even when several pipelines with different
    policies are alive in one process (``ExperimentConfig.dtype`` also
    keys the artifact cache, keeping float32 and float64 artifacts
    separate).  Code running outside the accessors sees whichever
    pipeline touched the global last.
    """

    def __init__(self, cfg: ExperimentConfig,
                 store: Optional[ArtifactStore] = None):
        self.cfg = cfg
        self._apply_dtype()
        self.store = store if store is not None else default_store()
        self._datasets: Optional[Tuple[ArrayDataset, ArrayDataset, ArrayDataset]] = None

    def _apply_dtype(self) -> None:
        from ..nn import set_default_dtype
        set_default_dtype(self.cfg.dtype)

    def get_or_build(self, key: str, build) -> object:
        """Artifact-store access with this pipeline's dtype pinned around
        the build — a second live pipeline may have moved the global
        default since construction."""
        self._apply_dtype()
        return self.store.get_or_build(key, build)

    # ------------------------------------------------------------------ #
    # datasets
    # ------------------------------------------------------------------ #
    def datasets(self) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
        """(train, val, surrogate) splits of the ImageNet stand-in."""
        if self._datasets is None:
            cfg = self.cfg
            ds_cfg = SynthImageNetConfig(
                num_classes=cfg.num_classes, image_size=cfg.image_size,
                noise=cfg.noise, jitter=cfg.jitter, seed=7 + cfg.seed)
            self._datasets = standard_splits(
                ds_cfg, cfg.train_per_class, cfg.val_per_class,
                cfg.surrogate_per_class)
        return self._datasets

    # ------------------------------------------------------------------ #
    # model grid (quantization track)
    # ------------------------------------------------------------------ #
    def _width(self, arch: str) -> int:
        """Per-architecture width: MobileNet is a thin architecture and
        needs 2x base width at this scale to land in the paper's
        accuracy regime (the paper's MobileNet is likewise the
        lowest-accuracy of the three)."""
        return self.cfg.width * 2 if arch == "mobilenet" else self.cfg.width

    def _build_arch(self, arch: str, seed: int) -> Module:
        return build_model(arch, num_classes=self.cfg.num_classes,
                           width=self._width(arch), seed=seed)

    def original(self, arch: str) -> Module:
        """Trained full-precision model for ``arch``."""
        cfg = self.cfg

        def build() -> Module:
            train, val, _ = self.datasets()
            model = self._build_arch(arch, cfg.seed)
            fit(model, train.x, train.y, epochs=cfg.train_epochs,
                batch_size=cfg.batch_size, lr=cfg.train_lr, seed=cfg.seed + 1)
            return model
        return self.get_or_build(cfg.cache_key("orig", arch), build)

    def quantized(self, arch: str) -> QATModel:
        """QAT-adapted (frozen) model derived from the original."""
        cfg = self.cfg

        def build() -> QATModel:
            train, _, _ = self.datasets()
            q = prepare_qat(self.original(arch), weight_bits=cfg.weight_bits,
                            act_bits=cfg.act_bits, per_channel=cfg.per_channel)
            qat_finetune(q, train.x, train.y, epochs=cfg.qat_epochs,
                         batch_size=cfg.batch_size, lr=cfg.qat_lr,
                         rng=np.random.default_rng(cfg.seed + 2))
            q.freeze()
            return q
        return self.get_or_build(cfg.cache_key("quant", arch), build)

    # ------------------------------------------------------------------ #
    # pruning track (§5.6)
    # ------------------------------------------------------------------ #
    def pruned(self, arch: str) -> Module:
        cfg = self.cfg

        def build() -> Module:
            train, _, _ = self.datasets()
            return prune_finetune(self.original(arch), train.x, train.y,
                                  sparsity=cfg.sparsity,
                                  epochs=cfg.prune_epochs,
                                  batch_size=cfg.batch_size,
                                  lr=cfg.prune_lr, seed=cfg.seed + 3)
        return self.get_or_build(cfg.cache_key("pruned", arch), build)

    def pruned_quantized(self, arch: str) -> QATModel:
        cfg = self.cfg

        def build() -> QATModel:
            train, _, _ = self.datasets()
            return prune_then_quantize(self.pruned(arch), train.x, train.y,
                                       weight_bits=cfg.weight_bits,
                                       act_bits=cfg.act_bits,
                                       per_channel=cfg.per_channel,
                                       qat_epochs=cfg.qat_epochs,
                                       qat_lr=cfg.qat_lr, seed=cfg.seed + 4)
        return self.get_or_build(cfg.cache_key("pruned_quant", arch), build)

    # ------------------------------------------------------------------ #
    # surrogates (§4.3 / §4.4)
    # ------------------------------------------------------------------ #
    def surrogate_original(self, arch: str) -> Module:
        """Semi-blackbox surrogate: distilled from the adapted model on the
        attacker's (disjoint) image pool, seeded from extracted weights."""
        cfg = self.cfg

        def build() -> Module:
            from ..attacks.surrogate import build_surrogate_original
            _, _, surr = self.datasets()
            template = self._build_arch(arch, cfg.seed + 50)
            return build_surrogate_original(
                self.quantized(arch), template, surr.x,
                distill_epochs=cfg.distill_epochs, distill_lr=cfg.distill_lr,
                temperature=cfg.distill_temperature, alpha=cfg.distill_alpha,
                seed=cfg.seed + 5)
        return self.get_or_build(cfg.cache_key("surr_orig", arch), build)

    def surrogate_adapted(self, arch: str) -> QATModel:
        """Blackbox surrogate adapted model: the §4.4 pipeline's second
        stage — re-adapt a prediction-only distilled surrogate with QAT."""
        cfg = self.cfg

        def build() -> QATModel:
            _, _, surr = self.datasets()
            teacher = self.quantized(arch)
            student = self._build_arch(arch, cfg.seed + 60)
            student = distill(teacher, student, surr.x,
                              epochs=cfg.distill_epochs, lr=cfg.distill_lr,
                              temperature=cfg.distill_temperature,
                              alpha=cfg.distill_alpha, seed=cfg.seed + 6)
            labels = predict_labels(teacher, surr.x)
            q = prepare_qat(student, weight_bits=cfg.weight_bits,
                            act_bits=cfg.act_bits, per_channel=cfg.per_channel)
            qat_finetune(q, surr.x, labels, epochs=cfg.qat_epochs,
                         batch_size=cfg.batch_size, lr=cfg.qat_lr,
                         rng=np.random.default_rng(cfg.seed + 7))
            q.freeze()
            return q
        return self.get_or_build(cfg.cache_key("surr_adapted", arch), build)

    def blackbox_surrogate_original(self, arch: str) -> Module:
        """Blackbox surrogate original (prediction-only distillation —
        no extracted-weight initialization, unlike semi-blackbox)."""
        cfg = self.cfg

        def build() -> Module:
            _, _, surr = self.datasets()
            student = self._build_arch(arch, cfg.seed + 60)
            return distill(self.quantized(arch), student, surr.x,
                           epochs=cfg.distill_epochs, lr=cfg.distill_lr,
                           temperature=cfg.distill_temperature,
                           alpha=cfg.distill_alpha, seed=cfg.seed + 6)
        return self.get_or_build(cfg.cache_key("bb_surr_orig", arch), build)

    # ------------------------------------------------------------------ #
    # robust track (§5.5)
    # ------------------------------------------------------------------ #
    def robust_original(self, arch: str = "resnet") -> Module:
        cfg = self.cfg

        def build() -> Module:
            train, _, _ = self.datasets()
            model = self._build_arch(arch, cfg.seed + 80)
            # warm start with standard training, then harden
            fit(model, train.x, train.y, epochs=max(1, cfg.train_epochs // 2),
                batch_size=cfg.batch_size, lr=cfg.train_lr, seed=cfg.seed + 81)
            adversarial_fit(model, train.x, train.y,
                            epochs=cfg.robust_epochs,
                            batch_size=cfg.batch_size,
                            lr=cfg.robust_lr,
                            eps=cfg.robust_eps,
                            attack_alpha=cfg.robust_eps / 8,
                            attack_steps=cfg.robust_attack_steps,
                            seed=cfg.seed + 82)
            return model
        return self.get_or_build(cfg.cache_key("robust_orig", arch), build)

    def robust_quantized(self, arch: str = "resnet") -> QATModel:
        cfg = self.cfg

        def build() -> QATModel:
            train, _, _ = self.datasets()
            q = prepare_qat(self.robust_original(arch),
                            weight_bits=cfg.weight_bits, act_bits=cfg.act_bits,
                            per_channel=cfg.per_channel)
            qat_finetune(q, train.x, train.y, epochs=cfg.qat_epochs,
                         batch_size=cfg.batch_size, lr=cfg.qat_lr,
                         rng=np.random.default_rng(cfg.seed + 83))
            q.freeze()
            return q
        return self.get_or_build(cfg.cache_key("robust_quant", arch), build)

    # ------------------------------------------------------------------ #
    # attack sets (§5.1 protocol)
    # ------------------------------------------------------------------ #
    def attack_set(self, models: List[Module], tag: str) -> ArrayDataset:
        """Class-balanced eval set correctly classified by all ``models``.

        Recomputed (cheap) rather than cached; deterministic per tag.
        Pixels are cast to the configured dtype so the attack hot loop
        runs at the policy precision end to end.
        """
        self._apply_dtype()
        _, val, _ = self.datasets()
        seed = int(self.cfg.cache_key("atk", tag), 16) % (2 ** 31)
        atk = select_attack_set(val, models, self.cfg.attack_per_class,
                                rng=np.random.default_rng(seed))
        if atk.x.dtype != np.dtype(self.cfg.dtype):
            atk = ArrayDataset(atk.x.astype(self.cfg.dtype), atk.y,
                               atk.num_classes)
        return atk

    # ------------------------------------------------------------------ #
    # face case study (§6)
    # ------------------------------------------------------------------ #
    def face_datasets(self) -> Tuple[ArrayDataset, ArrayDataset]:
        cfg = self.cfg
        fc = SynthFacesConfig(num_identities=cfg.face_identities,
                              image_size=cfg.face_image_size,
                              seed=23 + cfg.seed)
        train = generate_synth_faces(cfg.face_train_per_identity, fc, split_seed=1)
        val = generate_synth_faces(cfg.face_val_per_identity, fc, split_seed=2)
        return train, val

    def face_original(self) -> Module:
        cfg = self.cfg

        def build() -> Module:
            from ..nn.optim import Adam
            train, val = self.face_datasets()
            model = build_model("vggface", num_identities=cfg.face_identities,
                                image_size=cfg.face_image_size,
                                width=cfg.face_width, seed=cfg.seed + 90)
            # BN-free VGG trunk: Adam converges where plain SGD stalls
            opt = Adam(model.parameters(), lr=cfg.face_lr, weight_decay=1e-4)
            fit(model, train.x, train.y, epochs=cfg.face_epochs,
                batch_size=cfg.batch_size, optimizer=opt, seed=cfg.seed + 91)
            return model
        return self.get_or_build(cfg.cache_key("face_orig"), build)

    def face_quantized(self) -> QATModel:
        cfg = self.cfg

        def build() -> QATModel:
            from ..nn.optim import Adam
            train, _ = self.face_datasets()
            q = prepare_qat(self.face_original(),
                            weight_bits=cfg.face_weight_bits,
                            act_bits=cfg.act_bits,
                            per_channel=cfg.face_per_channel)
            # Adam for QAT recovery too: the Adam-trained trunk regresses
            # under the default SGD recipe
            opt = Adam(q.parameters(), lr=cfg.face_qat_lr)
            qat_finetune(q, train.x, train.y, epochs=cfg.face_qat_epochs,
                         batch_size=cfg.batch_size, optimizer=opt,
                         rng=np.random.default_rng(cfg.seed + 92))
            q.freeze()
            return q
        return self.get_or_build(cfg.cache_key("face_quant"), build)

    def face_edge(self):
        """The deployed integer artifact (TFLite stand-in)."""
        from ..edge import compile_edge
        return compile_edge(self.face_quantized(), self.cfg.face_identities)

    # ------------------------------------------------------------------ #
    # digit models (Fig 4)
    # ------------------------------------------------------------------ #
    def digit_datasets(self) -> Tuple[ArrayDataset, ArrayDataset]:
        cfg = self.cfg
        train = generate_synth_digits(cfg.digit_train_per_class,
                                      image_size=cfg.digit_image_size,
                                      seed=11 + cfg.seed, split_seed=1)
        analysis = generate_synth_digits(cfg.digit_analysis_per_class,
                                         image_size=cfg.digit_image_size,
                                         seed=11 + cfg.seed, split_seed=2)
        return train, analysis

    def digit_original(self) -> Module:
        """LeNet on the digit stand-in.

        The paper uses ResNet50 on MNIST here; at this scale a LeNet
        reaches the high-accuracy regime MNIST plays in Fig 4 (ResNet+BN
        at width 4-8 does not train reliably on the tiny digit set), and
        the analysis only needs a penultimate representation.
        """
        cfg = self.cfg

        def build() -> Module:
            train, _ = self.digit_datasets()
            model = build_model("lenet", num_classes=10,
                                image_size=cfg.digit_image_size,
                                in_channels=1, seed=cfg.seed + 100)
            fit(model, train.x, train.y, epochs=cfg.digit_epochs,
                batch_size=32, lr=cfg.digit_lr, seed=cfg.seed + 101)
            return model
        return self.get_or_build(cfg.cache_key("digit_orig"), build)

    def digit_quantized(self) -> QATModel:
        cfg = self.cfg

        def build() -> QATModel:
            train, _ = self.digit_datasets()
            q = prepare_qat(self.digit_original(), weight_bits=cfg.weight_bits,
                            act_bits=cfg.act_bits, per_channel=cfg.per_channel)
            qat_finetune(q, train.x, train.y, epochs=cfg.qat_epochs,
                         batch_size=cfg.batch_size, lr=cfg.qat_lr,
                         rng=np.random.default_rng(cfg.seed + 102))
            q.freeze()
            return q
        return self.get_or_build(cfg.cache_key("digit_quant"), build)
