"""Compiled forward executor: parity with the eager tape, fallback
behaviour, and the attack loop's model-pass accounting."""

import numpy as np
import pytest

from repro.attacks import DIVA, PGD
from repro.models import build_model
from repro.nn import Tensor, where
from repro.nn.graph import CompiledForward, GraphUnsupported, compile_forward
from repro.nn.module import Module


MODEL_CONFIGS = {
    "lenet": (dict(num_classes=6, in_channels=1, image_size=12, width=4),
              (5, 1, 12, 12)),
    "resnet": (dict(num_classes=6, width=4), (5, 3, 12, 12)),
    "mobilenet": (dict(num_classes=6, width=4), (5, 3, 12, 12)),
    "densenet": (dict(num_classes=6, width=4, growth=3), (5, 3, 12, 12)),
    "vggface": (dict(num_identities=8, image_size=16, width=4, embed_dim=8),
                (5, 3, 16, 16)),
}


def _build(name):
    kwargs, shape = MODEL_CONFIGS[name]
    model = build_model(name, **kwargs)
    model.eval()
    rng = np.random.default_rng(7)
    return model, rng.random(shape)


class TestReplayParity:
    @pytest.mark.parametrize("name", sorted(MODEL_CONFIGS))
    def test_forward_matches_eager(self, name):
        model, x = _build(name)
        ex = compile_forward(model, x)
        ref = model(Tensor(x)).data
        got = ex.replay(x)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("name", sorted(MODEL_CONFIGS))
    def test_input_grad_matches_eager(self, name):
        model, x = _build(name)
        ex = compile_forward(model, x)
        rng = np.random.default_rng(3)
        xt = Tensor(x, requires_grad=True)
        out = model(xt)
        seed = rng.normal(size=out.shape)
        out.backward(seed)
        got_out, got_gx = ex.value_and_input_grad(x, seed)
        np.testing.assert_allclose(got_out, out.data, rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(got_gx, xt.grad, rtol=1e-6, atol=1e-6)

    def test_variable_batch_replay(self):
        model, x = _build("resnet")
        ex = compile_forward(model, x)
        ref = model(Tensor(x)).data
        # shrinking batches replay against the same buffers
        for n in (len(x), 3, 1):
            np.testing.assert_allclose(ex.replay(x[:n]), ref[:n],
                                       rtol=1e-6, atol=1e-6)
        # growing past the traced size reallocates
        x_big = np.concatenate([x, x], axis=0)
        ref_big = model(Tensor(x_big)).data
        np.testing.assert_allclose(ex.replay(x_big), ref_big,
                                   rtol=1e-6, atol=1e-6)

    def test_quantized_model_parity(self):
        from repro.quantization import calibrate, prepare_qat
        model, x = _build("resnet")
        qat = prepare_qat(model, weight_bits=4, per_channel=False)
        calibrate(qat, x)
        qat.freeze()
        qat.eval()
        ex = compile_forward(qat, x)
        ref = qat(Tensor(x)).data
        np.testing.assert_allclose(ex.replay(x), ref, rtol=1e-6, atol=1e-6)
        xt = Tensor(x, requires_grad=True)
        out = qat(xt)
        seed = np.ones_like(out.data)
        out.backward(seed)
        _, gx = ex.value_and_input_grad(x, seed)
        np.testing.assert_allclose(gx, xt.grad, rtol=1e-6, atol=1e-6)

    def test_quantized_const_fold_stays_session_dtype(self):
        """Folded fake_quant consts must be cast to the session dtype.

        ``fake_quantize_array`` detours through float64; leaving the
        folded weight const at float64 promotes the conv GEMM, drifting
        off the eager tape by ulps — which an activation fake_quant can
        amplify into a full quantization step for rows whose
        pre-activation lands on a rounding boundary."""
        from repro.nn.tensor import set_default_dtype
        from repro.quantization import calibrate, prepare_qat
        set_default_dtype("float32")
        model, x = _build("resnet")
        x = x.astype(np.float32)
        qat = prepare_qat(model, weight_bits=4, per_channel=False)
        calibrate(qat, x)
        qat.freeze()
        qat.eval()
        ex = compile_forward(qat, x)
        for op in ex._const_ops:
            val = ex._env[op.out]
            if val.dtype.kind == "f":
                assert val.dtype == np.float32, (
                    f"const {op.kind} folded at {val.dtype}")
        ref = qat(Tensor(x)).data
        assert np.array_equal(ex.replay(x), ref)

    def test_pruned_model_parity(self):
        """Pruning masks are part of the folded constant subgraph."""
        model, x = _build("lenet")
        rng = np.random.default_rng(0)
        mask = (rng.random(model.conv1.weight.shape) > 0.5).astype(np.float64)
        model.conv1.set_weight_mask(mask)
        ex = compile_forward(model, x)
        np.testing.assert_allclose(ex.replay(x), model(Tensor(x)).data,
                                   rtol=1e-6, atol=1e-6)

    def test_input_grad_is_freshly_owned(self):
        """The returned input gradient must not alias per-op scratch: a
        later replay on the same program may not mutate it (stride-1
        pad-0 convs used to hand back the col2im accumulator itself)."""
        model, x = _build("lenet")     # first conv: stride 1
        ex = compile_forward(model, x)
        seed = np.ones(model(Tensor(x)).shape)
        _, g1 = ex.value_and_input_grad(x, seed)
        snapshot = g1.copy()
        _, g2 = ex.value_and_input_grad(x * 0.5, seed)
        assert not np.shares_memory(g1, g2)
        np.testing.assert_array_equal(g1, snapshot)

    def test_refresh_picks_up_weight_mutation(self):
        model, x = _build("lenet")
        ex = compile_forward(model, x)
        # rebinding .data (what load_state_dict does) invalidates the fold
        model.fc3.weight.data = model.fc3.weight.data * 2.0
        stale = ex.replay(x)
        ex.refresh()
        fresh = ex.replay(x)
        ref = model(Tensor(x)).data
        assert not np.allclose(stale, ref)
        np.testing.assert_allclose(fresh, ref, rtol=1e-6, atol=1e-6)


class TestNewKernels:
    """pad2d / where / stack joined the traced-op registry (ROADMAP):
    models using them compile instead of falling back to the eager tape."""

    def _check(self, model, x):
        ex = compile_forward(model, x)
        xt = Tensor(x, requires_grad=True)
        out = model(xt)
        seed = np.random.default_rng(3).normal(size=out.shape)
        out.backward(seed)
        got, gx = ex.value_and_input_grad(x, seed)
        np.testing.assert_allclose(got, out.data, rtol=0, atol=1e-12)
        np.testing.assert_allclose(gx, xt.grad, rtol=0, atol=1e-12)
        # variable batch replays against the same program
        np.testing.assert_allclose(ex.replay(x[:2]), model(Tensor(x[:2])).data,
                                   rtol=0, atol=1e-12)

    def test_pad2d_replays(self):
        class PadModel(Module):
            def forward(self, x):
                return x.pad2d((1, 2, 0, 1)).sum(axis=(2, 3), keepdims=False)

        self._check(PadModel(), np.random.default_rng(0).random((4, 3, 6, 6)))

    def test_where_with_constant_mask_replays(self):
        mask = np.random.default_rng(1).random((3, 6, 6)) > 0.5

        class Gated(Module):
            def forward(self, x):
                return where(mask, x * 2.0, x * 0.5).sum(axis=(1, 2, 3),
                                                         keepdims=True)

        self._check(Gated(), np.random.default_rng(0).random((4, 3, 6, 6)))

    def test_stack_replays(self):
        from repro.nn.tensor import stack

        class Stacked(Module):
            def forward(self, x):
                s = stack([x * 1.5, x - 0.25], axis=1)
                return s.sum(axis=(1, 2, 3, 4), keepdims=False)

        self._check(Stacked(), np.random.default_rng(0).random((4, 3, 6, 6)))

    def test_stack_on_batch_axis_refused(self):
        from repro.nn.tensor import stack

        class BadStack(Module):
            def forward(self, x):
                return stack([x, x], axis=0).sum(axis=(0, 2, 3, 4),
                                                 keepdims=False)

        with pytest.raises(GraphUnsupported):
            compile_forward(BadStack(), np.random.default_rng(0).random((2, 1, 4, 4)))


class TestFallback:
    def test_data_dependent_where_cond_refused(self):
        """A condition computed from the traced input (off-tape) must be
        refused loudly, not frozen into the program."""
        class WhereModel(Module):
            def forward(self, x):
                return where(x.data > 0.5, x, x * 0.5).sum(axis=(1, 2, 3),
                                                           keepdims=True)

        m = WhereModel()
        with pytest.raises(GraphUnsupported, match="batch-dependent"):
            compile_forward(m, np.random.default_rng(0).random((2, 1, 4, 4)))

    def test_unsupported_op_raises(self):
        class SliceModel(Module):
            def forward(self, x):
                # __getitem__ is not in the traced-op registry
                return (x[:, :1] * 2.0).sum(axis=(1, 2, 3), keepdims=True)

        m = SliceModel()
        with pytest.raises(GraphUnsupported):
            compile_forward(m, np.random.default_rng(0).random((2, 2, 4, 4)))

    def test_data_dependent_constant_caught_by_validation(self):
        """A forward that smuggles input data through an untraced numpy
        path must fail validation instead of silently freezing it."""
        class Leaky(Module):
            def forward(self, x):
                shift = Tensor(x.data.max())       # escapes the tape
                return (x - shift).sum(axis=(1, 2, 3), keepdims=True)

        m = Leaky()
        with pytest.raises(GraphUnsupported):
            compile_forward(m, np.random.default_rng(0).random((2, 1, 4, 4)))

    def test_non_module_model_falls_back_in_attacks(self):
        from repro.attacks.base import compile_model

        class NotATensorModel:
            def eval(self):
                return self

            def __call__(self, x):
                return "nonsense"

        assert compile_model(NotATensorModel(), np.zeros((2, 1, 4, 4))) is None


class SpyModel(Module):
    """Counts forward calls through a wrapped model."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.calls = 0

    def forward(self, x):
        self.calls += 1
        return self.inner(x)


class _NeverSucceedsPGD(PGD):
    """PGD whose success criterion never fires: the loop runs all steps,
    so the model-pass count is exactly deterministic."""

    def success_from_logits(self, aux, y):
        if aux is None:
            return None
        return np.zeros(len(y), dtype=bool)

    def is_success(self, x_adv, y):
        return np.zeros(len(x_adv), dtype=bool)


class _NeverSucceedsDIVA(DIVA):
    def success_from_logits(self, aux, y):
        if aux is None:
            return None
        return np.zeros(len(y), dtype=bool)

    def is_success(self, x_adv, y):
        return np.zeros(len(x_adv), dtype=bool)


class TestAttackModelPasses:
    """Regression: ``generate`` with keep_best performs exactly the
    expected number of model forward passes."""

    def _setup(self):
        model, x = _build("resnet")
        rng = np.random.default_rng(5)
        y = rng.integers(0, 6, size=len(x))
        return model, x, y

    def test_pgd_eager_passes_exactly_steps(self):
        model, x, y = self._setup()
        steps = 7
        spy = SpyModel(model)
        atk = _NeverSucceedsPGD(spy, steps=steps, eps=0.1, alpha=0.01)
        atk.use_compiled = False
        atk.generate(x, y)
        # one gradient pass per step, nothing else: the scheduler
        # retires finished samples without the trailing success forward
        # older loops paid (it cannot change the returned iterate)
        assert spy.calls == steps

    def test_pgd_no_keep_best_passes_steps(self):
        model, x, y = self._setup()
        steps = 5
        spy = SpyModel(model)
        atk = PGD(spy, steps=steps, eps=0.1, alpha=0.01, keep_best=False)
        atk.use_compiled = False
        atk.generate(x, y)
        assert spy.calls == steps

    def test_diva_eager_passes_steps_per_model(self):
        model, x, y = self._setup()
        from repro.quantization import calibrate, prepare_qat
        qat = prepare_qat(model, weight_bits=4, per_channel=False)
        calibrate(qat, x)
        qat.freeze()
        qat.eval()
        steps = 6
        spy_o, spy_a = SpyModel(model), SpyModel(qat)
        atk = _NeverSucceedsDIVA(spy_o, spy_a, steps=steps, eps=0.1, alpha=0.01)
        atk.use_compiled = False
        atk.generate(x, y)
        # exactly one pass per model per step — the naive loop paid
        # 4/step and the pre-engine loop 2/step plus a trailing check
        assert spy_o.calls == steps
        assert spy_a.calls == steps

    def test_compiled_path_runs_no_per_step_forwards(self):
        model, x, y = self._setup()
        steps = 9
        spy = SpyModel(model)
        atk = PGD(spy, steps=steps, eps=0.1, alpha=0.01)
        atk.generate(x, y)
        # tracing + compile-time validation only; replays never call
        # the module again
        assert spy.calls <= 3

    def test_compiled_and_eager_generate_identically(self):
        model, x, y = self._setup()
        kw = dict(steps=6, eps=0.1, alpha=0.01)
        fast = PGD(model, **kw).generate(x, y)
        slow_atk = PGD(model, **kw)
        slow_atk.use_compiled = False
        slow = slow_atk.generate(x, y)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)


class TestTensorSatellites:
    def test_item_on_scalar(self):
        assert Tensor(np.array([[3.5]])).item() == 3.5

    def test_item_on_non_scalar_raises_value_error(self):
        with pytest.raises(ValueError, match="size 4"):
            Tensor(np.ones((2, 2))).item()

    def test_var_builds_single_subtraction_node(self):
        t = Tensor(np.random.default_rng(0).random((3, 4)), requires_grad=True)
        v = t.var(axis=0)
        sq = v._parents[0]          # mean -> sum node over the square
        mul = sq._parents[0]
        assert mul._parents[0] is mul._parents[1]  # (d * d) shares one node

    def test_var_value_and_grad(self):
        rng = np.random.default_rng(1)
        data = rng.random((4, 5))
        t = Tensor(data, requires_grad=True)
        v = t.var(axis=0)
        np.testing.assert_allclose(v.data, data.var(axis=0), rtol=1e-12)
        v.sum().backward()
        n = data.shape[0]
        expected = 2.0 * (data - data.mean(axis=0)) / n
        np.testing.assert_allclose(t.grad, expected, rtol=1e-9, atol=1e-12)

    def test_accumulate_owned_adopts_array(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        g = np.ones(3)
        t._accumulate(g, owned=True)
        assert t.grad is g          # adopted, not copied
        t2 = Tensor(np.zeros(3), requires_grad=True)
        t2._accumulate(g, owned=False)
        assert t2.grad is not g     # defensively copied

    def test_backward_values_unchanged_by_ownership(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.random((3, 3)), requires_grad=True)
        b = Tensor(rng.random((3, 3)), requires_grad=True)
        ((a * b + a).relu().sum()).backward()
        ga = (b.data + 1.0) * ((a.data * b.data + a.data) > 0)
        np.testing.assert_allclose(a.grad, ga, rtol=1e-12)
