"""Optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import Adam, CosineLR, Parameter, SGD, StepLR, Tensor


def quadratic_loss(p: Parameter):
    """f(p) = ||p - 3||^2 with its gradient set on p."""
    p.grad = 2 * (p.data - 3.0)
    return float(((p.data - 3.0) ** 2).sum())


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            quadratic_loss(p)
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = Parameter(np.zeros(4))
            opt = SGD([p], lr=0.02, momentum=mom)
            for _ in range(30):
                quadratic_loss(p)
                opt.step()
            losses[mom] = float(((p.data - 3.0) ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        assert (np.abs(p.data) < 10.0).all()

    def test_nesterov_runs(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(100):
            quadratic_loss(p)
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=1.0).step()
        assert np.allclose(p.data, 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_loss(p)
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # with bias correction the very first step has magnitude ~lr
        assert np.isclose(abs(p.data[0]), 0.1, rtol=1e-3)

    def test_decoupled_weight_decay(self):
        p = Parameter(np.full(2, 5.0))
        opt = Adam([p], lr=0.01, weight_decay=0.1, decoupled=True)
        p.grad = np.zeros(2)
        opt.step()
        assert (p.data < 5.0).all()


class TestSchedulers:
    def test_step_lr(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            lrs.append(opt.lr)
            sched.step()
        assert lrs == [1.0, 1.0, 0.1, 0.1]

    def test_cosine_lr_endpoints(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, t_max=10, min_lr=0.0)
        assert opt.lr == 1.0
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, t_max=8)
        prev = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr
