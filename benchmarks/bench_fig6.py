"""Figure 6a-c — the quantization headline grid.

Paper: whitebox DIVA 92.3-97% top-1 evasive success; semi-blackbox
71.1-96.2%; blackbox 30.3-77.2%; PGD 30.2-50.9%.  Confidence deltas:
natural ~7.9%, PGD 18.6-25%, DIVA 56.6-72.4%.
"""

from .conftest import run_once


def test_fig6(benchmark, cfg, pipeline):
    import numpy as np
    from repro.experiments import exp_fig6
    res = run_once(benchmark, lambda: exp_fig6.run(cfg, pipeline=pipeline))
    for arch, r in res["per_arch"].items():
        # ordering claims of Fig 6a
        assert r["diva"]["top1_success"] > r["pgd"]["top1_success"], arch
        # Fig 6c ordering: natural < PGD-attacked < DIVA-attacked delta
        assert r["diva"]["confidence_delta"] > r["pgd"]["confidence_delta"], arch
        assert r["diva"]["confidence_delta"] > \
            r["natural_confidence_delta"], arch
    # semi-blackbox beats PGD on average (per-arch surrogate fidelity
    # varies at this scale; the paper's per-arch margins vary widely too)
    sb_mean = np.mean([r["semi_blackbox_diva"]["top1_success"]
                       for r in res["per_arch"].values()])
    pgd_mean = np.mean([r["pgd"]["top1_success"]
                        for r in res["per_arch"].values()])
    assert sb_mean > pgd_mean - 0.05
