"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, Conv2d, Linear, Module, ModuleList,
                      Parameter, ReLU, Sequential, Tensor)


class Small(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(4, 3, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.act(self.fc(x))


class TestRegistration:
    def test_parameters_registered(self):
        m = Small()
        names = [n for n, _ in m.named_parameters()]
        assert "fc.weight" in names and "fc.bias" in names

    def test_buffers_registered(self):
        m = Small()
        assert "counter" in dict(m.named_buffers())

    def test_reassignment_replaces_registration(self):
        m = Small()
        m.fc = Linear(4, 2, rng=np.random.default_rng(1))
        assert dict(m.named_parameters())["fc.weight"].shape == (2, 4)

    def test_plain_attr_drops_stale_module(self):
        m = Small()
        m.act = None
        assert "act" not in m._modules

    def test_num_parameters(self):
        m = Small()
        assert m.num_parameters() == 4 * 3 + 3


class TestModes:
    def test_train_eval_propagate(self):
        m = Sequential(Small(), Small())
        m.eval()
        assert all(not child.training for child in m.modules())
        m.train()
        assert all(child.training for child in m.modules())

    def test_zero_grad(self):
        m = Small()
        out = m(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert m.fc.weight.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_round_trip(self):
        m1, m2 = Small(), Small()
        m2.fc.weight.data += 1.0
        m2.load_state_dict(m1.state_dict())
        assert np.allclose(m1.fc.weight.data, m2.fc.weight.data)

    def test_state_dict_copies(self):
        m = Small()
        state = m.state_dict()
        state["fc.weight"] += 99
        assert not np.allclose(m.fc.weight.data, state["fc.weight"])

    def test_strict_missing_key_raises(self):
        m = Small()
        state = m.state_dict()
        del state["fc.bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        m = Small()
        state = m.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_non_strict_ignores_mismatch(self):
        m = Small()
        state = m.state_dict()
        state["bogus"] = np.zeros(1)
        m.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        m = Small()
        state = m.state_dict()
        state["fc.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_buffers_in_state(self):
        m = Small()
        m.set_buffer("counter", np.array([7.0]))
        m2 = Small()
        m2.load_state_dict(m.state_dict())
        assert m2.counter[0] == 7.0

    def test_batchnorm_running_stats_round_trip(self, rng):
        bn = BatchNorm2d(3)
        bn.train()
        bn(Tensor(rng.normal(size=(4, 3, 5, 5))))
        bn2 = BatchNorm2d(3)
        bn2.load_state_dict(bn.state_dict())
        assert np.allclose(bn.running_mean, bn2.running_mean)
        assert np.allclose(bn.running_var, bn2.running_var)


class TestCopyStructure:
    def test_copy_is_independent(self):
        m = Small()
        clone = m.copy_structure()
        clone.fc.weight.data += 5
        assert not np.allclose(m.fc.weight.data, clone.fc.weight.data)

    def test_copy_preserves_values(self):
        m = Small()
        clone = m.copy_structure()
        for (n1, p1), (n2, p2) in zip(m.named_parameters(),
                                      clone.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        s = Sequential(Linear(4, 8, rng=rng), ReLU(),
                       Linear(8, 2, rng=rng))
        out = s(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(s) == 3
        assert isinstance(s[1], ReLU)

    def test_sequential_append(self, rng):
        s = Sequential(Linear(4, 4, rng=rng))
        s.append(ReLU())
        assert len(s) == 2
        assert [type(m).__name__ for m in s] == ["Linear", "ReLU"]

    def test_modulelist_registration(self, rng):
        ml = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(ml) == 2
        outer = Module()
        outer.blocks = ml
        assert len([n for n, _ in outer.named_parameters()]) == 4

    def test_set_buffer_unknown_raises(self):
        m = Small()
        with pytest.raises(KeyError):
            m.set_buffer("nope", np.zeros(1))
