"""Sparsity schedules for gradual pruning during finetuning.

Implements the polynomial-decay schedule of Zhu & Gupta (2018), the
default in tfmot's ``PolynomialDecay``: sparsity ramps from an initial to
a final value over a window of steps with cubic easing, letting the
network recover between pruning increments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PolynomialDecaySchedule:
    """s(t) = s_f + (s_i - s_f) * (1 - (t - t0) / (t1 - t0))^power."""

    initial_sparsity: float = 0.0
    final_sparsity: float = 0.67
    begin_step: int = 0
    end_step: int = 100
    power: float = 3.0

    def __post_init__(self):
        if not 0 <= self.initial_sparsity <= self.final_sparsity < 1:
            raise ValueError("need 0 <= initial <= final < 1")
        if self.end_step <= self.begin_step:
            raise ValueError("end_step must exceed begin_step")

    def sparsity_at(self, step: int) -> float:
        if step <= self.begin_step:
            return self.initial_sparsity
        if step >= self.end_step:
            return self.final_sparsity
        frac = (step - self.begin_step) / (self.end_step - self.begin_step)
        return (self.final_sparsity +
                (self.initial_sparsity - self.final_sparsity) *
                (1.0 - frac) ** self.power)


@dataclass(frozen=True)
class ConstantSchedule:
    """One-shot pruning at a fixed sparsity."""

    sparsity: float = 0.67

    def sparsity_at(self, step: int) -> float:
        return self.sparsity
