"""Attack-serving layer: shared plan caches, request coalescing, futures.

The paper's threat model is multi-tenant by construction — many users
query one deployed edge artifact while attackers probe the (original,
adapted) pair — and the ROADMAP's north star asks for heavy-traffic
serving on top of the four compiled-executor legs.  This package is
that layer:

- :class:`PlanCache` (:mod:`repro.serve.cache`) — one budgeted LRU
  store for every compiled plan (forward replays, paired attack
  programs, integer edge programs), replacing the per-attack and
  per-edge-model ad-hoc dicts;
- :class:`Scheduler` (:mod:`repro.serve.scheduler`) — arrival-order
  dispatch that coalesces compatible requests (same serve signature,
  same shape/dtype) into single scheduled passes, starvation-free by
  construction;
- :class:`ServeSession` (:mod:`repro.serve.session`) — the front end:
  submit heterogeneous jobs, get per-job futures, results bit-identical
  to running each job alone;
- :mod:`repro.serve.workload` — recorded mixed workloads, replayable
  sequentially or through a session (``repro-exp serve``), with parity
  verification and the ``serve_throughput`` bench protocol.
"""

from .cache import PlanCache, plan_nbytes
from .scheduler import DispatchRecord, Job, JobError, JobFuture, Scheduler
from .session import ServeSession
from .workload import (Workload, build_workload, load_workload,
                       mixed_workload_spec, replay_sequential, replay_serve,
                       save_workload, verify_parity)

__all__ = [
    "PlanCache", "plan_nbytes",
    "DispatchRecord", "Job", "JobError", "JobFuture", "Scheduler",
    "ServeSession",
    "Workload", "build_workload", "load_workload", "mixed_workload_spec",
    "replay_sequential", "replay_serve", "save_workload", "verify_parity",
]
