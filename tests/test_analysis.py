"""Analysis: PCA, representation extraction, boundary probing."""

import numpy as np
import pytest

from repro.analysis import (PCA, extract_features, probe_boundary_plane,
                            random_directions)


class TestPCA:
    def test_recovers_dominant_direction(self, rng):
        direction = np.array([3.0, 4.0]) / 5.0
        data = rng.normal(size=(500, 1)) * 10 @ direction[None, :]
        data += rng.normal(size=(500, 2)) * 0.1
        pca = PCA(n_components=1).fit(data)
        comp = pca.components_[0]
        assert abs(abs(comp @ direction) - 1.0) < 0.01

    def test_explained_variance_ratio_sums_le_one(self, rng):
        data = rng.normal(size=(100, 8))
        pca = PCA(n_components=3).fit(data)
        assert pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9
        assert (np.diff(pca.explained_variance_) <= 1e-9).all()

    def test_transform_centers(self, rng):
        data = rng.normal(5.0, 1.0, size=(200, 4))
        z = PCA(n_components=2).fit_transform(data)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-9)

    def test_inverse_transform_reconstructs(self, rng):
        data = rng.normal(size=(50, 3))
        pca = PCA(n_components=3).fit(data)
        rec = pca.inverse_transform(pca.transform(data))
        assert np.allclose(rec, data, atol=1e-9)

    def test_deterministic_signs(self, rng):
        data = rng.normal(size=(60, 5))
        c1 = PCA(n_components=2).fit(data).components_
        c2 = PCA(n_components=2).fit(data.copy()).components_
        assert np.allclose(c1, c2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PCA(n_components=5).fit(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            PCA().fit(rng.normal(size=10))
        with pytest.raises(RuntimeError):
            PCA().transform(rng.normal(size=(3, 2)))


class TestRepresentations:
    def test_extract_features_shape(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        f = extract_features(tiny_model, val.x[:10], batch_size=4)
        assert f.shape == (10, tiny_model.feature_dim)

    def test_features_separate_classes(self, tiny_model, tiny_dataset):
        """Within-class feature distance should undercut between-class."""
        _, val = tiny_dataset
        f = extract_features(tiny_model, val.x)
        y = val.y
        centroids = np.stack([f[y == c].mean(axis=0) for c in range(6)])
        within = np.mean([np.linalg.norm(f[y == c] - centroids[c], axis=1).mean()
                          for c in range(6)])
        between = np.mean([np.linalg.norm(centroids[a] - centroids[b])
                           for a in range(6) for b in range(6) if a != b])
        assert between > within * 0.5

    def test_requires_features_method(self, fixed_logit_model):
        with pytest.raises(TypeError):
            extract_features(fixed_logit_model(np.zeros((1, 2))),
                             np.zeros((1, 1, 2, 2)))


class TestBoundaryProbe:
    def test_directions_orthonormal(self, rng):
        d1, d2 = random_directions((3, 8, 8), rng)
        assert np.isclose(np.linalg.norm(d1), 1.0)
        assert np.isclose(np.linalg.norm(d2), 1.0)
        assert abs((d1 * d2).sum()) < 1e-9

    def test_probe_map_shapes(self, tiny_model, tiny_quantized, tiny_dataset,
                              rng):
        _, val = tiny_dataset
        d1, d2 = random_directions(val.x[0].shape, rng)
        bmap = probe_boundary_plane(tiny_model, tiny_quantized, val.x[0],
                                    d1, d2, radius=0.2, resolution=7)
        assert bmap.labels_original.shape == (7, 7)
        assert bmap.labels_adapted.shape == (7, 7)
        assert 0.0 <= bmap.disagreement_fraction <= 1.0
        assert bmap.disagreement_mask().shape == (7, 7)

    def test_center_label_matches_direct_prediction(self, tiny_model,
                                                    tiny_quantized,
                                                    tiny_dataset, rng):
        from repro.training import predict_labels
        _, val = tiny_dataset
        d1, d2 = random_directions(val.x[0].shape, rng)
        bmap = probe_boundary_plane(tiny_model, tiny_quantized, val.x[0],
                                    d1, d2, radius=0.1, resolution=5)
        direct = predict_labels(tiny_model, val.x[:1])[0]
        assert bmap.labels_original[2, 2] == direct
