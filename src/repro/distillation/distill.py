"""Surrogate-model construction by knowledge distillation (§4.3, §4.4).

The attacker holds the adapted model (extracted from an edge device) and
a modest unlabeled image pool disjoint from the operator's training data.
``distill`` trains a student to match the teacher's outputs on that pool.

Used twice by the attack pipelines:

- semi-blackbox: teacher = true adapted model, student = full-precision
  clone -> surrogate *original* model;
- blackbox: the distilled full-precision surrogate is additionally
  re-adapted (QAT) to produce a surrogate *adapted* model.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..nn.module import Module
from ..nn.optim import Adam, Optimizer
from ..nn.tensor import Tensor
from ..training.evaluate import predict_logits
from .losses import distillation_loss


def distill(teacher: Module, student: Module, images: np.ndarray,
            epochs: int = 8, batch_size: int = 64, lr: float = 1e-3,
            temperature: float = 4.0, alpha: float = 0.7,
            optimizer: Optional[Optimizer] = None, seed: int = 0,
            log_fn: Optional[Callable[[str], None]] = None,
            use_compiled: bool = True) -> Module:
    """Train ``student`` to imitate ``teacher`` on unlabeled ``images``.

    The teacher is queried once up front (labels + logits are all the
    attacker needs) through a compiled forward replay when the pool is
    large enough to amortize compilation; the student then minimizes the
    KD objective, with the inner loop's full-size batches driven through
    a compiled train-step program (bit-identical to the eager tape,
    which still serves the ragged tail batch and any fallback).
    """
    teacher_logits = predict_logits(teacher, images)
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else Adam(student.parameters(), lr=lr)
    n = len(images)
    student.train()
    step = None
    if use_compiled and isinstance(student, Module):
        from ..nn.train_graph import compile_train_step_or_none

        def kd_loss(logits, t_logits, _t=temperature, _a=alpha):
            return distillation_loss(logits, t_logits, temperature=_t, alpha=_a)

        nb = min(batch_size, n)
        step = compile_train_step_or_none(student, kd_loss, images[:nb],
                                          teacher_logits[:nb], opt)
        if step is None and log_fn:
            log_fn("train-step compilation unavailable; using the eager tape")
    for epoch in range(epochs):
        order = rng.permutation(n)
        total = 0.0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            if step is not None and step.accepts(images[idx]):
                batch_loss = step.step(images[idx], teacher_logits[idx])
            else:
                logits = student(Tensor(images[idx]))
                loss = distillation_loss(logits, teacher_logits[idx],
                                         temperature=temperature, alpha=alpha)
                opt.zero_grad()
                loss.backward()
                opt.step()
                batch_loss = float(loss.data)
            total += batch_loss * len(idx)
        if log_fn:
            log_fn(f"distill epoch {epoch}: loss={total / n:.4f}")
    student.eval()
    return student


def agreement(model_a: Module, model_b: Module, images: np.ndarray,
              batch_size: int = 128) -> float:
    """Fraction of images on which two models predict the same label —
    the fidelity metric for judging surrogate quality."""
    pa = predict_logits(model_a, images, batch_size).argmax(axis=1)
    pb = predict_logits(model_b, images, batch_size).argmax(axis=1)
    return float((pa == pb).mean())
