"""Experiment configuration.

One frozen dataclass drives every experiment so the whole grid (Table 1
through Fig 10) is reproducible from a single seed, and the artifact
cache can key on the exact configuration.

Scale calibration vs the paper (full rationale in DESIGN.md §2):

- dataset: 20 procedural classes at 16x16 (ImageNet: 1000 @ 224x224),
  difficulty tuned so original-model accuracy and fp32-vs-int8
  instability land in the paper's Table-1 regime;
- adaptation: 4-bit per-tensor weights + 8-bit activations.  The paper
  quantizes ResNet50-class models to int8; divergence accumulated over
  ~50 layers there corresponds to coarser grids on our 8-layer models —
  int4 restores the boundary-offset-to-attack-step ratio the attack
  exploits (int4 is also an edge-deployment width the paper names, §1);
- attack budget: eps=32/255, alpha=4/255 (paper: 8/255, 1/255).  Attack
  power grows with input dimension; 16x16x3 = 768 pixels vs ImageNet's
  150k needs a proportionally larger eps for the baseline PGD to reach
  its paper-level attack-only success (~99%), which it does at this
  setting.  Steps stay at the paper's t=20;
- top-k metric: k=2 of 20 classes (10% of label space) alongside the
  paper's k=5 of 1000 (0.5%); both are reported.
- dtype policy: experiments default to float64 (the substrate's native
  precision — keeps results directly comparable to earlier runs);
  benchmarks run float32, the deployment dtype.  ``dtype`` is part of
  the config, flows through :class:`~repro.experiments.pipeline.
  Pipeline` into training and the attack sets, and keys the artifact
  cache, so mixed-precision artifacts never collide.  Measured fig6
  success-rate deltas between the two dtypes are recorded by
  ``exp_fig6.run_dtype_delta``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Tuple

ARCHITECTURES: Tuple[str, ...] = ("resnet", "mobilenet", "densenet")


@dataclass(frozen=True)
class ExperimentConfig:
    """Full configuration for the reproduction experiment grid."""

    # dataset (ImageNet stand-in)
    num_classes: int = 20
    image_size: int = 16
    noise: float = 0.40
    jitter: float = 0.20
    train_per_class: int = 120
    val_per_class: int = 40
    surrogate_per_class: int = 60

    # models
    width: int = 8
    train_epochs: int = 8
    train_lr: float = 0.02
    batch_size: int = 64

    # quantization adaptation
    weight_bits: int = 4
    act_bits: int = 8
    per_channel: bool = False
    qat_epochs: int = 1
    qat_lr: float = 0.002

    # pruning adaptation
    sparsity: float = 0.67
    prune_epochs: int = 2
    prune_lr: float = 0.005

    # surrogates (semi-blackbox / blackbox)
    distill_epochs: int = 25
    distill_lr: float = 1e-3
    distill_temperature: float = 2.0
    distill_alpha: float = 0.5

    # attack budget
    eps: float = 32.0 / 255.0
    alpha: float = 4.0 / 255.0
    steps: int = 20
    c: float = 1.0
    attack_per_class: int = 6
    topk: int = 2

    # robust training (§5.5) — trained AND attacked at robust_eps (the
    # paper uses one budget throughout §5.5); 16/255 is where minimax
    # training is effective at this model scale (robust acc ~25% vs ~7%
    # undefended, matching the paper's ~22% regime)
    robust_epochs: int = 6
    robust_attack_steps: int = 7
    robust_eps: float = 16.0 / 255.0
    robust_lr: float = 0.01

    # face case study (§6) — the BN-free VGG trunk needs Adam to reach
    # the case study's high-accuracy regime
    face_identities: int = 40
    face_image_size: int = 32
    face_train_per_identity: int = 40
    face_val_per_identity: int = 8
    face_attack_per_identity: int = 3
    face_epochs: int = 18
    face_lr: float = 3e-3
    face_width: int = 8
    face_topk: int = 3
    # the face study quantizes at int8 (exactly the paper's TFLite
    # setting): the fine-grained identity task supplies tight margins,
    # so int8 divergence already carries the attack, and int4 per-tensor
    # would destroy the Adam-trained trunk's accuracy
    face_weight_bits: int = 8
    face_per_channel: bool = False
    face_qat_epochs: int = 2
    face_qat_lr: float = 5e-4

    # digits / Fig 4
    digit_image_size: int = 16
    digit_train_per_class: int = 150
    digit_analysis_per_class: int = 100
    digit_epochs: int = 6
    digit_lr: float = 0.03

    #: numpy dtype every pipeline artifact (training, attacks, eval)
    #: runs in: "float64" (default, reference precision) or "float32"
    #: (deployment/benchmark precision)
    dtype: str = "float64"

    seed: int = 0

    def cache_key(self, *parts: str) -> str:
        """Stable hash of the config plus a label path (artifact cache key)."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        h = hashlib.sha1(payload.encode())
        for p in parts:
            h.update(b"/")
            h.update(str(p).encode())
        return h.hexdigest()[:16]

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """Default configuration used for EXPERIMENTS.md numbers."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny configuration for tests: minutes -> seconds."""
        return cls(
            num_classes=6, image_size=12, train_per_class=40,
            val_per_class=15, surrogate_per_class=15,
            width=4, train_epochs=3, distill_epochs=3,
            qat_epochs=1, prune_epochs=1, steps=10, attack_per_class=4,
            robust_epochs=1, robust_attack_steps=3,
            face_identities=8, face_image_size=16,
            face_train_per_identity=10, face_val_per_identity=4,
            face_attack_per_identity=2, face_epochs=12, face_width=4,
            digit_train_per_class=40, digit_analysis_per_class=20,
            digit_epochs=4,
        )
