"""Semi-blackbox and blackbox DIVA pipelines (§4.3, §4.4).

Semi-blackbox (Fig 5): the attacker extracts the adapted model from an
edge device, reconstructs a differentiable copy
(:mod:`repro.quantization.extract`), distills a full-precision surrogate
of the *original* model from it, and runs whitebox DIVA on
(surrogate original, true adapted).

Blackbox: the attacker additionally lacks the adapted model's parameters
(prediction access only): a full-precision surrogate is distilled from
the adapted model's predictions, then re-adapted (QAT on the attacker's
data) into a surrogate adapted model; DIVA runs on the two surrogates and
transfers to the true pair.

Both pipelines finish training their surrogates *before* the returned
bundle's ``attack`` runs, so the DIVA instance fuses the (frozen) model
pair into a shared-scratch :class:`~repro.attacks.engine.PairedExecutor`
on its first gradient batch and steps at two fused model passes per
iteration on the active-slot scheduler; the bundle's ``attack`` also
exposes ``generate_sweep`` for (eps, c) grids over the surrogate pair.
``Attack.generate`` re-folds the compiled constants on every call, so
reusing a bundle after further finetuning stays correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..distillation import distill
from ..nn.module import Module
from ..quantization import (QATModel, extract_deployed_model, prepare_qat,
                            qat_finetune)
from ..training.evaluate import predict_labels
from .base import DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS
from .diva import DIVA


@dataclass
class SurrogateBundle:
    """Models an attacker reconstructs, plus the DIVA instance over them."""

    surrogate_original: Module
    surrogate_adapted: Optional[Module]
    attack: DIVA


def build_surrogate_original(adapted: Module, template: Module,
                             attacker_images: np.ndarray,
                             pretrained_init: Optional[Module] = None,
                             distill_epochs: int = 8, distill_lr: float = 1e-3,
                             temperature: float = 4.0, alpha: float = 0.7,
                             seed: int = 0,
                             log_fn: Optional[Callable[[str], None]] = None) -> Module:
    """Distill a full-precision surrogate of the original model.

    ``template`` supplies the architecture. Initialization follows §4.3:
    "initialized using the pretrained ImageNet parameters when possible
    or the parameters of the adapted model" — pass ``pretrained_init``
    for the former; otherwise, when the adapted model is a
    :class:`QATModel`, its extracted (dequantized) weights seed the
    student; else the template's fresh weights are used.
    """
    if pretrained_init is not None:
        student = pretrained_init.copy_structure()
    elif isinstance(adapted, QATModel):
        student = extract_deployed_model(adapted, template)
    else:
        student = template.copy_structure()
    return distill(adapted, student, attacker_images, epochs=distill_epochs,
                   lr=distill_lr, temperature=temperature, alpha=alpha,
                   seed=seed, log_fn=log_fn)


def semi_blackbox_diva(adapted: Module, template: Module,
                       attacker_images: np.ndarray, c: float = 1.0,
                       eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                       steps: int = DEFAULT_STEPS,
                       pretrained_init: Optional[Module] = None,
                       distill_epochs: int = 8, seed: int = 0,
                       log_fn: Optional[Callable[[str], None]] = None
                       ) -> SurrogateBundle:
    """Assemble the §4.3 pipeline; the returned bundle's ``attack``
    generates adversarial samples evaluated against the *true* models."""
    surrogate = build_surrogate_original(
        adapted, template, attacker_images, pretrained_init=pretrained_init,
        distill_epochs=distill_epochs, seed=seed, log_fn=log_fn)
    attack = DIVA(surrogate, adapted, c=c, eps=eps, alpha=alpha, steps=steps)
    return SurrogateBundle(surrogate, None, attack)


def blackbox_diva(adapted_predict_model: Module, template: Module,
                  attacker_images: np.ndarray, attacker_labels: Optional[np.ndarray] = None,
                  c: float = 1.0, eps: float = DEFAULT_EPS,
                  alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                  pretrained_init: Optional[Module] = None,
                  distill_epochs: int = 8, qat_epochs: int = 1,
                  weight_bits: int = 8, per_channel: bool = False, seed: int = 0,
                  log_fn: Optional[Callable[[str], None]] = None
                  ) -> SurrogateBundle:
    """Assemble the §4.4 pipeline.

    ``adapted_predict_model`` is used *only* through its predictions
    (distillation queries); its parameters never reach the attack.  The
    surrogate adapted model is produced by re-adapting the surrogate
    original with QAT on the attacker's data, labeled by the deployed
    model's observable predictions.
    """
    if pretrained_init is not None:
        student = pretrained_init.copy_structure()
    else:
        student = template.copy_structure()
    surrogate_orig = distill(adapted_predict_model, student, attacker_images,
                             epochs=distill_epochs, seed=seed, log_fn=log_fn)
    labels = (attacker_labels if attacker_labels is not None else
              predict_labels(adapted_predict_model, attacker_images))
    surrogate_adapted = prepare_qat(surrogate_orig, weight_bits=weight_bits,
                                    per_channel=per_channel)
    qat_finetune(surrogate_adapted, attacker_images, labels,
                 epochs=qat_epochs, lr=0.001, log_fn=log_fn)
    surrogate_adapted.freeze()
    attack = DIVA(surrogate_orig, surrogate_adapted, c=c, eps=eps,
                  alpha=alpha, steps=steps)
    return SurrogateBundle(surrogate_orig, surrogate_adapted, attack)
