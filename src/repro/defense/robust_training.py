"""PGD minimax adversarial training — the §5.5 defense.

Solves Eq. 4: minimize over weights the maximum loss an eps-bounded
perturbation can induce, by training on PGD adversarial examples crafted
against the current weights (Madry et al. 2018).  As the paper notes,
robust training is applied to the *original* full-precision model on the
server; the adapted model is then derived from the robust original via
the usual QAT pipeline.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..attacks.base import DEFAULT_EPS, input_gradient, project_linf
from ..nn import functional as F
from ..nn.module import Module
from ..nn.optim import Optimizer, SGD
from ..nn.tensor import Tensor
from ..training.evaluate import predict_labels


def pgd_perturb(model: Module, x: np.ndarray, y: np.ndarray, eps: float,
                alpha: float, steps: int) -> np.ndarray:
    """Inner maximization: PGD against the *current* weights."""
    model.eval()
    adv = x.copy()
    for _ in range(steps):
        g = input_gradient(
            lambda xt: F.cross_entropy(model(xt), y, reduction="sum"), adv)
        adv = project_linf(adv + alpha * np.sign(g), x, eps).astype(x.dtype)
    return adv


def adversarial_fit(model: Module, x_train: np.ndarray, y_train: np.ndarray,
                    epochs: int = 5, batch_size: int = 64, lr: float = 0.01,
                    momentum: float = 0.9, weight_decay: float = 1e-4,
                    eps: float = DEFAULT_EPS, attack_alpha: float = 2.0 / 255.0,
                    attack_steps: int = 7,
                    optimizer: Optional[Optimizer] = None, seed: int = 0,
                    log_fn: Optional[Callable[[str], None]] = None) -> Module:
    """Adversarial training loop (Eq. 4's outer minimization).

    Uses the usual budget split: a handful of inner PGD steps per batch
    (7 by default — the cost the paper cites as why robust training only
    runs on servers).
    """
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    n = len(x_train)
    for epoch in range(epochs):
        order = rng.permutation(n)
        total = 0.0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            xb, yb = x_train[idx], y_train[idx]
            adv = pgd_perturb(model, xb, yb, eps, attack_alpha, attack_steps)
            model.train()
            logits = model(Tensor(adv))
            loss = F.cross_entropy(logits, yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            model.eval()
            total += float(loss.data) * len(idx)
        if log_fn:
            log_fn(f"robust epoch {epoch}: adv loss={total / n:.4f}")
    model.eval()
    return model


def robust_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                    eps: float = DEFAULT_EPS, alpha: float = 1.0 / 255.0,
                    steps: int = 20, batch_size: int = 64) -> float:
    """Accuracy under a full-strength PGD evaluation attack."""
    y = np.asarray(y)
    correct = 0
    for start in range(0, len(x), batch_size):
        xb, yb = x[start:start + batch_size], y[start:start + batch_size]
        adv = pgd_perturb(model, xb, yb, eps, alpha, steps)
        correct += int((predict_labels(model, adv) == yb).sum())
    return correct / len(x)
