"""Lightweight data transforms (augmentation and normalization)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def normalize(x: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Channel-wise normalization of (N, C, H, W) images."""
    mean = np.asarray(mean).reshape(1, -1, 1, 1)
    std = np.asarray(std).reshape(1, -1, 1, 1)
    return (x - mean) / std


def denormalize(x: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    mean = np.asarray(mean).reshape(1, -1, 1, 1)
    std = np.asarray(std).reshape(1, -1, 1, 1)
    return x * std + mean


def channel_stats(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel mean/std over a (N, C, H, W) batch."""
    return x.mean(axis=(0, 2, 3)), x.std(axis=(0, 2, 3))


def random_horizontal_flip(x: np.ndarray, rng: np.random.Generator,
                           p: float = 0.5) -> np.ndarray:
    """Flip each image left-right with probability ``p``."""
    flips = rng.random(len(x)) < p
    out = x.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def random_shift(x: np.ndarray, rng: np.random.Generator,
                 max_shift: int = 2) -> np.ndarray:
    """Integer-pixel random translation with zero padding."""
    n, c, h, w = x.shape
    pad = np.pad(x, ((0, 0), (0, 0), (max_shift, max_shift),
                     (max_shift, max_shift)))
    out = np.empty_like(x)
    offsets = rng.integers(0, 2 * max_shift + 1, size=(n, 2))
    for i in range(n):  # small n, cheap slicing; no numerics involved
        oy, ox = offsets[i]
        out[i] = pad[i, :, oy:oy + h, ox:ox + w]
    return out


def additive_noise(x: np.ndarray, rng: np.random.Generator,
                   sigma: float = 0.02, clip: bool = True) -> np.ndarray:
    """Gaussian pixel noise (optionally clipped back to [0, 1])."""
    out = x + rng.normal(0, sigma, size=x.shape).astype(x.dtype)
    return np.clip(out, 0, 1) if clip else out


def augment_batch(x: np.ndarray, rng: np.random.Generator,
                  flip: bool = True, shift: int = 2,
                  noise: float = 0.0) -> np.ndarray:
    """Default training augmentation pipeline."""
    out = x
    if flip:
        out = random_horizontal_flip(out, rng)
    if shift:
        out = random_shift(out, rng, shift)
    if noise > 0:
        out = additive_noise(out, rng, noise)
    return out
