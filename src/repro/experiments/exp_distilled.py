"""Extension: DIVA against *distillation* adaptation.

§2.1 lists three edge-adaptation techniques — quantization, pruning and
model distillation — but the paper evaluates only the first two and
frames the rest as future work ("we hope this work opens the door to a
new line of research on attacks ... that target the variations in models
deployed in production").  This experiment closes that loop: the adapted
model is a *smaller distilled student* (width halved), and DIVA attacks
the original/student divergence exactly as it does quantization.

Expected shape (and what we observe): distillation produces far larger
divergence than quantization (a different, smaller function rather than
a discretized copy), so — as with pruning — even PGD separates the
models often, while DIVA still dominates on evasive success.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attacks import DIVA, PGD
from ..distillation import distill
from ..metrics import evaluate_attack, instability_report
from ..models import build_model
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def distilled_student(pipe: Pipeline, arch: str):
    """A half-width student distilled from the cached original model."""
    cfg = pipe.cfg

    def build():
        train, _, _ = pipe.datasets()
        student = build_model(arch, num_classes=cfg.num_classes,
                              width=max(2, cfg.width // 2),
                              seed=cfg.seed + 70)
        return distill(pipe.original(arch), student, train.x,
                       epochs=cfg.distill_epochs, lr=cfg.distill_lr,
                       temperature=cfg.distill_temperature,
                       alpha=cfg.distill_alpha, seed=cfg.seed + 71)
    return pipe.get_or_build(cfg.cache_key("distilled", arch), build)


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    _, val, _ = pipe.datasets()

    rows = []
    results: Dict = {"per_arch": {}}
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        student = distilled_student(pipe, arch)
        inst = instability_report(orig, student, val.x, val.y)
        atk_set = pipe.attack_set([orig, student], f"distilled-{arch}")
        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        x_pgd = PGD(student, **kw).generate(atk_set.x, atk_set.y)
        x_diva = DIVA(orig, student, c=cfg.c, **kw).generate(atk_set.x,
                                                             atk_set.y)
        rp = evaluate_attack(orig, student, x_pgd, atk_set.y, topk=cfg.topk)
        rd = evaluate_attack(orig, student, x_diva, atk_set.y, topk=cfg.topk)
        results["per_arch"][arch] = {
            "student_accuracy": inst.adapted_accuracy,
            "instability": inst.deviation_instability,
            "pgd_top1": rp.top1_success_rate,
            "diva_top1": rd.top1_success_rate,
            "diva_confidence_delta": rd.confidence_delta,
        }
        rows.append([arch, f"{inst.adapted_accuracy:.1%}",
                     f"{inst.deviation_instability:.1%}",
                     f"{rp.top1_success_rate:.1%}",
                     f"{rd.top1_success_rate:.1%}"])
    table = format_table(
        ["Architecture", "Student acc", "Instability", "PGD top-1",
         "DIVA top-1"], rows,
        title="Extension — DIVA against distillation adaptation")
    results["table"] = table
    if verbose:
        print(table)
    save_results("distilled", results)
    return results
