"""Decision-boundary divergence probing (the Fig 2 intuition, made
measurable).

Fig 2 of the paper is a conceptual sketch: the adapted model's decision
boundaries are a coarsened copy of the original's, and DIVA drives inputs
into the thin regions where they disagree.  This module samples a 2D
slice of input space around a natural image and maps where the two models
agree/disagree, quantifying the sliver DIVA exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..training.evaluate import predict_labels


@dataclass
class BoundaryMap:
    """Agreement map over a 2D input-space slice.

    ``labels_original``/``labels_adapted`` are (res, res) integer grids;
    ``alphas``/``betas`` are the plane coordinates (in units of the two
    direction vectors).
    """

    labels_original: np.ndarray
    labels_adapted: np.ndarray
    alphas: np.ndarray
    betas: np.ndarray

    @property
    def disagreement_fraction(self) -> float:
        """Fraction of the probed plane where the models disagree."""
        return float((self.labels_original != self.labels_adapted).mean())

    def disagreement_mask(self) -> np.ndarray:
        return self.labels_original != self.labels_adapted


def random_directions(shape: Tuple[int, ...], rng: np.random.Generator
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Two orthonormalized random directions in image space."""
    d1 = rng.normal(size=shape)
    d2 = rng.normal(size=shape)
    d1 = d1 / np.linalg.norm(d1)
    d2 = d2 - (d2 * d1).sum() * d1
    d2 = d2 / np.linalg.norm(d2)
    return d1, d2


def probe_boundary_plane(original: Module, adapted: Module, image: np.ndarray,
                         d1: np.ndarray, d2: np.ndarray, radius: float = 0.1,
                         resolution: int = 21, batch_size: int = 256
                         ) -> BoundaryMap:
    """Classify a (resolution x resolution) grid of the plane
    ``image + a*d1 + b*d2`` with both models.

    ``radius`` is the extent in each direction (pixel units, pre-clip).
    """
    alphas = np.linspace(-radius, radius, resolution)
    betas = np.linspace(-radius, radius, resolution)
    aa, bb = np.meshgrid(alphas, betas, indexing="ij")
    flat_a = aa.ravel()[:, None, None, None]
    flat_b = bb.ravel()[:, None, None, None]
    batch = np.clip(image[None] + flat_a * d1[None] + flat_b * d2[None],
                    0.0, 1.0).astype(image.dtype)
    po = predict_labels(original, batch, batch_size)
    pa = predict_labels(adapted, batch, batch_size)
    return BoundaryMap(
        labels_original=po.reshape(resolution, resolution),
        labels_adapted=pa.reshape(resolution, resolution),
        alphas=alphas, betas=betas,
    )
