from setuptools import find_packages, setup

setup(
    name="repro-tale-of-two-models",
    version="0.1.0",
    description=("Reproduction of 'A Tale of Two Models: Constructing "
                 "Evasive Attacks on Edge Models' (MLSys 2022)"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-bench=repro.benchrunner:main",
        ],
    },
)
