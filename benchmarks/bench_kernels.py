"""Substrate micro-benchmarks (not a paper table; engineering numbers).

Times the hot kernels everything else is built on — conv forward/backward,
fake-quant, compiled replay vs. the eager tape, the integer edge engine
vs float inference, and end-to-end attack stepping.  The paper's §5.2
'Attack speed' reports PGD and DIVA running at the same per-step speed
because their GPUs batch both models together; this reproduction gets
its per-step parity budget from the compiled executor
(:mod:`repro.nn.graph`) plus shared-forward success checks in
``Attack.generate`` — one fused pass per model per step, so DIVA costs
two model passes per step (down from four in the naive loop) and PGD
costs one.  ``repro.benchrunner`` (``make bench``) runs this suite and
records a ``BENCH_<sha>.json`` perf trajectory; attack workloads are
benchmarked in float32, the deployment dtype.

The attack-step and replay benches build registry models directly
(speed does not depend on trained weights), so they run without the
session ``pipeline`` fixture's training cost.
"""

import time

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 8, 16, 16)).astype(np.float32)
    w = rng.normal(size=(16, 8, 3, 3)).astype(np.float32)
    return x, w


@pytest.fixture(scope="module")
def attack_models():
    """Untrained resnet + its frozen 8-bit adaptation, bench-sized.

    Labels are the original model's own predictions: every sample starts
    un-succeeded (the original is "correct" by construction and the 8-bit
    twin mostly agrees), so the keep-best loop's early-success dropout
    reflects genuine attack progress instead of random-label degeneracy
    inflating steps/sec.
    """
    from repro.models import build_model
    from repro.quantization import calibrate, prepare_qat
    from repro.training import predict_labels
    rng = np.random.default_rng(0)
    x = rng.random((16, 3, 16, 16)).astype(np.float32)
    orig = build_model("resnet", num_classes=10, width=8, seed=0)
    orig.eval()
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x)
    return orig, quant, x, y


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    xt, wt = Tensor(x), Tensor(w)
    benchmark(lambda: F.conv2d(xt, wt, None, padding=1))


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        F.conv2d(xt, wt, None, padding=1).sum().backward()
    benchmark(step)


def test_fake_quant_overhead(benchmark):
    from repro.quantization import FakeQuantize
    rng = np.random.default_rng(0)
    fq = FakeQuantize.for_activations()
    x = Tensor(rng.normal(size=(64, 8, 16, 16)).astype(np.float32))
    fq.train()
    fq(x)
    fq.freeze()
    benchmark(lambda: fq(x))


def test_eager_forward_reference(benchmark, attack_models):
    """Eager-tape resnet forward on the bench batch — the baseline the
    compiled replay is compared against (ratio computed by
    ``repro.benchrunner`` from the two medians)."""
    orig, _, x, _ = attack_models
    xt = Tensor(x)
    benchmark(lambda: orig(xt))


def test_compiled_replay_vs_eager_forward(benchmark, attack_models):
    """Compiled resnet replay of the same forward."""
    from repro.nn.graph import compile_forward
    orig, _, x, _ = attack_models
    ex = compile_forward(orig, x)
    benchmark(lambda: ex.replay(x, copy=False))


def test_attack_step_cost_pgd_vs_diva(benchmark, attack_models):
    """End-to-end ``generate`` stepping cost.

    One DIVA step is one *fused* forward+input-gradient through two
    models (the §5.2 budget); PGD is the same through one.  The
    benchmark callable runs DIVA; PGD steps/sec is measured inline and
    both are recorded in extra_info for the BENCH trajectory.
    """
    from repro.attacks import DIVA, PGD
    orig, quant, x, y = attack_models
    steps = 10
    diva = DIVA(orig, quant, steps=steps)
    pgd = PGD(quant, steps=steps)
    diva.generate(x[:4], y[:4])     # compile + warm buffers
    pgd.generate(x[:4], y[:4])

    t0 = time.perf_counter()
    reps = 3
    for _ in range(reps):
        pgd.generate(x, y)
    pgd_steps_per_sec = steps * reps / (time.perf_counter() - t0)

    benchmark(lambda: diva.generate(x, y))
    median = benchmark.stats.stats.median
    benchmark.extra_info["diva_steps_per_sec"] = steps / median
    benchmark.extra_info["pgd_steps_per_sec"] = pgd_steps_per_sec
    benchmark.extra_info["diva_step_ns"] = median / steps * 1e9
    benchmark.extra_info["keep_best"] = True
    benchmark.extra_info["batch"] = len(x)


def test_attack_sweep_vs_sequential(benchmark, attack_models):
    """A 4-point (eps, c) grid: one ``generate_sweep`` against the
    pre-engine per-configuration pattern (a fresh DIVA instance per grid
    point, each compiling and stepping its own programs — the loop that
    exp_fig7 / exp_sec55 / exp_table2 ran before the paired engine).
    Both arms include program compilation, and the sweep's per-variant
    outputs are asserted identical to the sequential ones.
    """
    from repro.attacks import DIVA
    orig, quant, x, y = attack_models
    steps = 10
    grid = [{"c": 0.1}, {"c": 1.0}, {"eps": 16 / 255, "alpha": 2 / 255},
            {"c": 5.0}]

    def sequential():
        outs = []
        for v in grid:
            atk = DIVA(orig, quant, c=v.get("c", 1.0),
                       eps=v.get("eps", 8 / 255),
                       alpha=v.get("alpha", 1 / 255), steps=steps)
            outs.append(atk.generate(x, y))
        return outs

    def sweep():
        return DIVA(orig, quant, c=1.0, eps=8 / 255, alpha=1 / 255,
                    steps=steps).generate_sweep(x, y, grid)

    ref = sequential()          # also warms BLAS/page caches
    got = sweep()
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(a, b)

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        sequential()
    seq_s = (time.perf_counter() - t0) / reps

    benchmark(sweep)
    sweep_s = benchmark.stats.stats.median
    benchmark.extra_info["sweep_ms"] = sweep_s * 1e3
    benchmark.extra_info["sequential_ms"] = seq_s * 1e3
    benchmark.extra_info["sweep_speedup"] = seq_s / sweep_s
    benchmark.extra_info["grid_points"] = len(grid)


def test_edge_engine_inference(benchmark, cfg, pipeline):
    """Integer-path inference cost on the deployed face model."""
    edge = pipeline.face_edge()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    benchmark(lambda: edge.predict(x))


def test_float_inference_reference(benchmark, cfg, pipeline):
    """Float-path inference on the same face model, for comparison."""
    orig = pipeline.face_original()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    orig.eval()
    benchmark(lambda: orig(Tensor(x)))
