"""Utilities: RNG derivation, PPM/PGM writers."""

import numpy as np
import pytest

from repro.utils import (child_generator, child_seed, generator,
                         noise_to_image, write_pgm, write_ppm)


class TestRNG:
    def test_generator_deterministic(self):
        assert generator(5).random() == generator(5).random()

    def test_child_seed_stable_across_calls(self):
        assert child_seed(1, "train", 3) == child_seed(1, "train", 3)

    def test_child_seed_distinguishes_paths(self):
        assert child_seed(1, "train") != child_seed(1, "val")
        assert child_seed(1, "a", 0) != child_seed(1, "a", 1)

    def test_child_generator_independent_streams(self):
        a = child_generator(0, "x").random(5)
        b = child_generator(0, "y").random(5)
        assert not np.allclose(a, b)


class TestImageIO:
    def test_ppm_round_trip_header(self, tmp_path, rng):
        img = rng.random((3, 4, 5))
        path = str(tmp_path / "img.ppm")
        write_ppm(path, img)
        with open(path, "rb") as f:
            content = f.read()
        assert content.startswith(b"P6\n5 4\n255\n")
        assert len(content) == len(b"P6\n5 4\n255\n") + 3 * 4 * 5

    def test_ppm_shape_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "x.ppm"), np.zeros((1, 4, 4)))

    def test_pgm_accepts_both_layouts(self, tmp_path, rng):
        write_pgm(str(tmp_path / "a.pgm"), rng.random((4, 4)))
        write_pgm(str(tmp_path / "b.pgm"), rng.random((1, 4, 4)))
        with pytest.raises(ValueError):
            write_pgm(str(tmp_path / "c.pgm"), rng.random((3, 4, 4)))

    def test_noise_to_image_range(self, rng):
        noise = rng.normal(size=(3, 8, 8)) * 0.1
        img = noise_to_image(noise)
        assert img.min() >= 0.0 and img.max() <= 1.0
        peak = np.abs(noise).argmax()
        expected = 0.0 if noise.flat[peak] < 0 else 1.0
        assert np.isclose(img.flat[peak], expected)

    def test_noise_to_image_zero_noise(self):
        assert np.allclose(noise_to_image(np.zeros((3, 2, 2))), 0.5)


class TestInitializers:
    def test_kaiming_normal_std(self):
        from repro.nn import kaiming_normal
        rng = np.random.default_rng(0)
        w = kaiming_normal((256, 128, 3, 3), rng)
        fan_in = 128 * 9
        assert np.isclose(w.std(), np.sqrt(2.0 / fan_in), rtol=0.05)

    def test_xavier_uniform_bound(self):
        from repro.nn import xavier_uniform
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_kaiming_uniform_bound(self):
        from repro.nn import kaiming_uniform
        rng = np.random.default_rng(0)
        w = kaiming_uniform((64, 32), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 32)
        assert np.abs(w).max() <= bound
