"""Standard layers: Linear, Conv2d, BatchNorm2d, activations, pooling.

Layers carry two hooks the adaptation subsystems attach to:

- ``weight_fake_quant``: set by :func:`repro.quantization.qat.prepare_qat`;
  when present, the effective weight is the fake-quantized weight.
- ``weight_mask``: set by :mod:`repro.pruning`; when present, the effective
  weight is elementwise-masked, so pruned weights stay exactly zero through
  finetuning while gradients still flow to the surviving ones.

Keeping these on the layer (rather than rewriting the graph) is what lets
one architecture definition serve as original / quantized / pruned /
pruned+quantized variants, exactly the model families the paper attacks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from . import tensor as _tensor
from .module import Module, Parameter
from .tensor import Tensor


class _WeightedLayer(Module):
    """Shared effective-weight logic for Linear and Conv2d."""

    def __init__(self):
        super().__init__()
        self.weight_fake_quant = None          # Optional[FakeQuantize]
        self.activation_post_process = None    # Optional[FakeQuantize]
        self._weight_mask: Optional[np.ndarray] = None

    @property
    def weight_mask(self) -> Optional[np.ndarray]:
        return self._weight_mask

    def set_weight_mask(self, mask: Optional[np.ndarray]) -> None:
        if mask is not None:
            mask = np.asarray(mask, dtype=self.weight.data.dtype)
            if mask.shape != self.weight.data.shape:
                raise ValueError(f"mask shape {mask.shape} != weight "
                                 f"shape {self.weight.data.shape}")
        self._weight_mask = mask

    def effective_weight(self) -> Tensor:
        """Weight after pruning mask and fake quantization."""
        w: Tensor = self.weight
        if self._weight_mask is not None:
            w = w * Tensor(self._weight_mask)
        if self.weight_fake_quant is not None:
            w = self.weight_fake_quant(w)
        return w


class Linear(_WeightedLayer):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng,
                                                     gain=1.0))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.linear(x, self.effective_weight(), self.bias)
        if self.activation_post_process is not None:
            out = self.activation_post_process(out)
        return out

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(_WeightedLayer):
    """2D convolution over NCHW tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d(x, self.effective_weight(), self.bias,
                       stride=self.stride, padding=self.padding,
                       groups=self.groups)
        if self.activation_post_process is not None:
            out = self.activation_post_process(out)
        return out

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}"
                + (f", groups={self.groups}" if self.groups != 1 else "") + ")")


class _RunningStats:
    """Shared running-statistics updates for the BatchNorm family.

    These exact callables are recorded as replayable effects by the
    training-step compiler and fed by the tape's own batch statistics
    (no second pass over the batch), so compiled steps advance the
    running mean/var precisely the way eager steps do — same numpy
    expressions, same momentum mixing.
    """

    def _update_running_mean(self, mu: np.ndarray) -> None:
        self.set_buffer("running_mean",
                        (1 - self.momentum) * self.running_mean
                        + self.momentum * mu.reshape(-1))

    def _update_running_var(self, v: np.ndarray) -> None:
        self.set_buffer("running_var",
                        (1 - self.momentum) * self.running_var
                        + self.momentum * v.reshape(-1))


class BatchNorm2d(Module, _RunningStats):
    """Batch normalization over (N, H, W) per channel, with running stats."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mu
            v = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self._update_running_mean(mu.data)
            self._update_running_var(v.data)
            if _tensor._GRAPH_TRACER is not None:
                _tensor._GRAPH_TRACER.emit_effect(self._update_running_mean, mu)
                _tensor._GRAPH_TRACER.emit_effect(self._update_running_var, v)
            inv = (v + self.eps) ** -0.5
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            inv = Tensor(1.0 / np.sqrt(self.running_var.reshape(1, -1, 1, 1) + self.eps))
            centered = x - mu
        # fold gain into the (1, C, 1, 1) scale BEFORE touching the full
        # tensor: one full-size multiply instead of two, and the backward
        # pays one fewer full-size product as well (the training hot loop
        # is BN-bound after the conv rewrites)
        w = self.weight.reshape(1, self.num_features, 1, 1)
        b = self.bias.reshape(1, self.num_features, 1, 1)
        return centered * (inv * w) + b

    def __repr__(self):
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(Module, _RunningStats):
    """Batch normalization over the batch axis for (N, F) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=0, keepdims=True)
            centered = x - mu
            v = (centered * centered).mean(axis=0, keepdims=True)
            self._update_running_mean(mu.data)
            self._update_running_var(v.data)
            if _tensor._GRAPH_TRACER is not None:
                _tensor._GRAPH_TRACER.emit_effect(self._update_running_mean, mu)
                _tensor._GRAPH_TRACER.emit_effect(self._update_running_var, v)
            inv = (v + self.eps) ** -0.5
        else:
            centered = x - Tensor(self.running_mean)
            inv = Tensor(1.0 / np.sqrt(self.running_var + self.eps))
        return centered * (inv * self.weight) + self.bias


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self.activation_post_process = None    # Optional[FakeQuantize]

    def forward(self, x: Tensor) -> Tensor:
        out = x.relu()
        if self.activation_post_process is not None:
            out = self.activation_post_process(out)
        return out

    def __repr__(self):
        return "ReLU()"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout driven by an internal deterministic generator."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self):
        return f"Dropout(p={self.p})"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
